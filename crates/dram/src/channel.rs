//! Timing-checked command issue for one HBM channel.
//!
//! [`DramChannel`] is the lowest simulation layer: callers (the FR-FCFS
//! controller, the PIM command engine) pick commands, ask for the earliest
//! legal issue cycle, and commit them. Every Table 2 constraint is enforced:
//!
//! | Constraint | Scope | Rule |
//! |---|---|---|
//! | tRP   | slot  | ACT ≥ precharge + tRP |
//! | tRCD  | slot  | RD/WR ≥ ACT + tRCD |
//! | tRAS  | slot  | PRE ≥ ACT + tRAS |
//! | tRTP  | slot  | PRE ≥ RD + tRTP |
//! | tWR   | slot  | PRE ≥ end of write burst + tWR |
//! | tRRD_L| bank group | ACT-to-ACT spacing within a group |
//! | tFAW  | channel | ≤ 4 ACTs in any tFAW window |
//! | tCCD_S/L | channel / bank group | column-to-column spacing |
//! | tREFI/tRFC | channel | refresh cadence and duration |
//! | C/A bus | channel | one command per cycle |
//!
//! Dual-row-buffer banks additionally reject opening a row already owned by
//! the other buffer (the functional hazard of Figure 8(b)); intra-bank
//! ACT-to-ACT spacing across the two buffers is conservatively modeled as
//! tRRD_L.

use std::collections::VecDeque;

use neupims_types::{BankId, ChannelId, Cycle, HbmTiming, MemConfig, SimError};

use crate::bank::{BankState, Slot};
use crate::command::{DramCommand, IssueInfo};
use crate::stats::ChannelStats;
use crate::storage::Storage;

/// One HBM channel: banks, channel-level timing state, counters, and the
/// functional data mirror.
#[derive(Debug, Clone)]
pub struct DramChannel {
    id: ChannelId,
    mem: MemConfig,
    timing: HbmTiming,
    banks: Vec<BankState>,
    faw_window: VecDeque<Cycle>,
    next_act_bankgroup: Vec<Cycle>,
    next_col_bankgroup: Vec<Cycle>,
    next_col_any: Cycle,
    next_ca: Cycle,
    refresh_due: Cycle,
    busy_until: Cycle,
    stats: ChannelStats,
    storage: Storage,
    dual: bool,
}

impl DramChannel {
    /// Creates an idle channel. `dual` selects dual-row-buffer (NeuPIMs)
    /// banks; `false` models conventional single-row-buffer PIM banks.
    pub fn new(mem: MemConfig, timing: HbmTiming, dual: bool) -> Self {
        Self::with_id(ChannelId::new(0), mem, timing, dual)
    }

    /// Creates an idle channel carrying an explicit channel id (used in
    /// error reports when many channels coexist).
    pub fn with_id(id: ChannelId, mem: MemConfig, timing: HbmTiming, dual: bool) -> Self {
        let banks = (0..mem.banks_per_channel)
            .map(|_| BankState::new(dual))
            .collect();
        let groups = mem.bankgroups() as usize;
        let elems_per_row = mem.page_elems(neupims_types::DataType::Fp16) as usize;
        Self {
            id,
            mem,
            timing,
            banks,
            faw_window: VecDeque::with_capacity(4),
            next_act_bankgroup: vec![0; groups],
            next_col_bankgroup: vec![0; groups],
            next_col_any: 0,
            next_ca: 0,
            refresh_due: timing.t_refi,
            busy_until: 0,
            stats: ChannelStats::default(),
            storage: Storage::new(elems_per_row),
            dual,
        }
    }

    /// Channel id used in error reports.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// Memory organization of this channel.
    pub fn mem_config(&self) -> &MemConfig {
        &self.mem
    }

    /// Timing parameter set of this channel.
    pub fn timing(&self) -> &HbmTiming {
        &self.timing
    }

    /// Whether banks carry the dual row buffers.
    pub fn is_dual(&self) -> bool {
        self.dual
    }

    /// Bytes moved by one column command (`bus width * burst length`).
    pub fn burst_bytes(&self) -> u64 {
        self.mem.bus_bytes_per_cycle * self.timing.t_bl
    }

    /// Bursts per page.
    pub fn cols_per_page(&self) -> u32 {
        (self.mem.page_bytes / self.burst_bytes()) as u32
    }

    /// Read access to a bank's state.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: BankId) -> &BankState {
        &self.banks[bank.index()]
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ChannelStats {
        &mut self.stats
    }

    /// Resets event counters (e.g. after a warm-up window).
    pub fn reset_stats(&mut self) {
        self.stats = ChannelStats::default();
    }

    /// Functional data mirror.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable functional data mirror.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Cycle at which the next all-bank refresh falls due.
    pub fn refresh_due(&self) -> Cycle {
        self.refresh_due
    }

    /// True when a refresh should be scheduled at or before `at`.
    pub fn refresh_overdue(&self, at: Cycle) -> bool {
        at >= self.refresh_due
    }

    /// Earliest cycle the C/A bus is free at or after `at`.
    pub fn ca_free_at(&self, at: Cycle) -> Cycle {
        self.next_ca.max(at)
    }

    fn bankgroup(&self, bank: BankId) -> usize {
        (bank.0 / self.mem.banks_per_bankgroup) as usize
    }

    fn col_spacing_any(&self) -> Cycle {
        self.timing.t_ccd_s.max(self.timing.t_bl)
    }

    fn col_spacing_group(&self) -> Cycle {
        self.timing.t_ccd_l.max(self.timing.t_bl)
    }

    /// Earliest legal issue cycle for `cmd`, at or after cycle 0.
    ///
    /// # Errors
    ///
    /// Returns structural errors that no amount of waiting cures:
    /// [`SimError::RowNotOpen`] for column commands without an open row,
    /// [`SimError::RowBufferConflict`] for a dual-buffer row hazard, and
    /// [`SimError::InvalidConfig`]-class misuse (ACT on an open slot,
    /// refresh with open rows — the caller must precharge first).
    pub fn earliest_issue(&self, cmd: &DramCommand) -> Result<Cycle, SimError> {
        let mut at = self.next_ca.max(self.busy_until);
        match *cmd {
            DramCommand::Activate { bank, row, slot } => {
                let b = self.bank(bank);
                if b.row_conflicts(slot, row) {
                    return Err(SimError::RowBufferConflict {
                        channel: self.id,
                        bank,
                        row,
                    });
                }
                let s = b.slot(slot);
                if let Some(open) = s.open_row {
                    return Err(SimError::InvalidConfig(format!(
                        "ACT to {bank} with open row {open}; precharge first"
                    )));
                }
                at = at.max(s.act_ready).max(b.next_act_any);
                at = at.max(self.next_act_bankgroup[self.bankgroup(bank)]);
                if self.faw_window.len() == 4 {
                    at = at.max(self.faw_window[0] + self.timing.t_faw);
                }
                Ok(at)
            }
            DramCommand::Read { bank, col } | DramCommand::Write { bank, col } => {
                let b = self.bank(bank);
                let s = b.slot(Slot::Mem);
                if s.open_row.is_none() {
                    return Err(SimError::RowNotOpen {
                        channel: self.id,
                        bank,
                        row: col, // no row context; col aids debugging
                    });
                }
                if col >= self.cols_per_page() {
                    return Err(SimError::InvalidShape(format!(
                        "column {col} beyond page ({} bursts)",
                        self.cols_per_page()
                    )));
                }
                at = at
                    .max(s.col_ready)
                    .max(self.next_col_any)
                    .max(self.next_col_bankgroup[self.bankgroup(bank)]);
                Ok(at)
            }
            DramCommand::Precharge { bank, slot } => {
                let b = self.bank(bank);
                let s = b.slot(slot);
                if s.open_row.is_none() {
                    return Err(SimError::RowNotOpen {
                        channel: self.id,
                        bank,
                        row: u32::MAX,
                    });
                }
                Ok(at.max(s.pre_ready))
            }
            DramCommand::PrechargeAll { slot } => {
                let mut t = at;
                for b in &self.banks {
                    let s = b.slot(slot);
                    if s.open_row.is_some() {
                        t = t.max(s.pre_ready);
                    }
                }
                Ok(t)
            }
            DramCommand::RefreshAll => {
                for (i, b) in self.banks.iter().enumerate() {
                    if !b.fully_closed() {
                        return Err(SimError::InvalidConfig(format!(
                            "refresh with open row in bank {i}; precharge first"
                        )));
                    }
                    at = at.max(b.slot(Slot::Mem).act_ready);
                    if self.dual {
                        at = at.max(b.slot(Slot::Pim).act_ready);
                    }
                }
                Ok(at)
            }
        }
    }

    /// Issues `cmd` at cycle `at`, which must be legal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimingViolation`] if `at` precedes the earliest
    /// legal cycle, plus the structural errors of [`Self::earliest_issue`].
    pub fn issue_at(&mut self, cmd: DramCommand, at: Cycle) -> Result<IssueInfo, SimError> {
        let legal_at = self.earliest_issue(&cmd)?;
        if at < legal_at {
            return Err(SimError::TimingViolation {
                constraint: constraint_name(&cmd),
                channel: self.id,
                bank: cmd.bank(),
                at,
                legal_at,
            });
        }
        self.next_ca = at + 1;
        self.stats.ca_busy += 1;
        let t = self.timing;
        let done_at = match cmd {
            DramCommand::Activate { bank, row, slot } => {
                let group = self.bankgroup(bank);
                let b = &mut self.banks[bank.index()];
                let phys = b.resolve(slot);
                let s = b.slot_mut(slot);
                s.open_row = Some(row);
                s.act_at = at;
                s.col_ready = at + t.t_rcd;
                s.pre_ready = at + t.t_ras;
                b.next_act_any = at + t.t_rrd_l;
                self.next_act_bankgroup[group] = at + t.t_rrd_l;
                if self.faw_window.len() == 4 {
                    self.faw_window.pop_front();
                }
                self.faw_window.push_back(at);
                if phys == Slot::Pim {
                    self.stats.pim_acts += 1;
                } else {
                    self.stats.acts += 1;
                }
                at + t.t_rcd
            }
            DramCommand::Read { bank, .. } => {
                let group = self.bankgroup(bank);
                let b = &mut self.banks[bank.index()];
                let s = b.slot_mut(Slot::Mem);
                s.pre_ready = s.pre_ready.max(at + t.t_rtp);
                self.next_col_any = at + self.col_spacing_any();
                self.next_col_bankgroup[group] = at + self.col_spacing_group();
                self.stats.reads += 1;
                self.stats.bytes_read += self.burst_bytes();
                self.stats.data_bus_busy += t.t_bl;
                at + t.t_cl + t.t_bl
            }
            DramCommand::Write { bank, .. } => {
                let group = self.bankgroup(bank);
                let b = &mut self.banks[bank.index()];
                let s = b.slot_mut(Slot::Mem);
                let burst_end = at + t.t_cwl + t.t_bl;
                s.pre_ready = s.pre_ready.max(burst_end + t.t_wr);
                self.next_col_any = at + self.col_spacing_any();
                self.next_col_bankgroup[group] = at + self.col_spacing_group();
                self.stats.writes += 1;
                self.stats.bytes_written += self.burst_bytes();
                self.stats.data_bus_busy += t.t_bl;
                burst_end
            }
            DramCommand::Precharge { bank, slot } => {
                let b = &mut self.banks[bank.index()];
                let phys = b.resolve(slot);
                let s = b.slot_mut(slot);
                s.open_row = None;
                s.act_ready = at + t.t_rp;
                if phys == Slot::Pim {
                    self.stats.pim_precharges += 1;
                } else {
                    self.stats.precharges += 1;
                }
                at + t.t_rp
            }
            DramCommand::PrechargeAll { slot } => {
                let mut closed = 0;
                for b in &mut self.banks {
                    let phys = b.resolve(slot);
                    let s = b.slot_mut(slot);
                    if s.open_row.is_some() {
                        s.open_row = None;
                        s.act_ready = at + t.t_rp;
                        closed += 1;
                        if phys == Slot::Pim {
                            self.stats.pim_precharges += 1;
                        } else {
                            self.stats.precharges += 1;
                        }
                    }
                }
                let _ = closed;
                at + t.t_rp
            }
            DramCommand::RefreshAll => {
                let end = at + t.t_rfc;
                self.busy_until = end;
                for b in &mut self.banks {
                    b.next_act_any = b.next_act_any.max(end);
                    for slot in [Slot::Mem, Slot::Pim] {
                        let s = b.slot_mut(slot);
                        s.act_ready = s.act_ready.max(end);
                    }
                }
                self.refresh_due += t.t_refi;
                self.stats.refreshes += 1;
                end
            }
        };
        Ok(IssueInfo {
            issued_at: at,
            done_at,
        })
    }

    /// Issues `cmd` at its earliest legal cycle (never before `not_before`).
    ///
    /// # Errors
    ///
    /// Propagates the structural errors of [`Self::earliest_issue`].
    pub fn issue(&mut self, cmd: DramCommand, not_before: Cycle) -> Result<IssueInfo, SimError> {
        let at = self.earliest_issue(&cmd)?.max(not_before);
        self.issue_at(cmd, at)
    }

    /// Occupies one C/A bus slot without touching bank state.
    ///
    /// This is the hook for PIM control commands (`PIM_HEADER`,
    /// `PIM_DOTPRODUCT`, `PIM_GEMV`): they travel over the shared
    /// command/address bus — the contention the NeuPIMs controller manages —
    /// but their bank-side effects are modeled by the PIM engine itself.
    pub fn issue_control(&mut self, not_before: Cycle) -> IssueInfo {
        let at = self.next_ca.max(self.busy_until).max(not_before);
        self.next_ca = at + 1;
        self.stats.ca_busy += 1;
        IssueInfo {
            issued_at: at,
            done_at: at + 1,
        }
    }

    /// Occupies one C/A slot plus one data-bus burst without a bank access.
    ///
    /// This is the `PIM_RDRESULT` data path: accumulated dot products move
    /// from the per-bank result registers to the host over the regular data
    /// bus, contending with MEM reads but not with any row buffer.
    pub fn issue_data_burst(&mut self, not_before: Cycle, is_read: bool) -> IssueInfo {
        let at = self
            .next_ca
            .max(self.busy_until)
            .max(self.next_col_any)
            .max(not_before);
        self.next_ca = at + 1;
        self.next_col_any = at + self.col_spacing_any();
        self.stats.ca_busy += 1;
        self.stats.data_bus_busy += self.timing.t_bl;
        if is_read {
            self.stats.bytes_read += self.burst_bytes();
        } else {
            self.stats.bytes_written += self.burst_bytes();
        }
        IssueInfo {
            issued_at: at,
            done_at: at + self.timing.t_cl + self.timing.t_bl,
        }
    }
}

fn constraint_name(cmd: &DramCommand) -> &'static str {
    match cmd {
        DramCommand::Activate { .. } => "ACT timing (tRP/tRRD_L/tFAW/tRC)",
        DramCommand::Read { .. } => "RD timing (tRCD/tCCD)",
        DramCommand::Write { .. } => "WR timing (tRCD/tCCD)",
        DramCommand::Precharge { .. } | DramCommand::PrechargeAll { .. } => {
            "PRE timing (tRAS/tRTP/tWR)"
        }
        DramCommand::RefreshAll => "REF timing (tRP)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(dual: bool) -> DramChannel {
        DramChannel::new(MemConfig::table2(), HbmTiming::table2(), dual)
    }

    fn act(bank: u32, row: u32, slot: Slot) -> DramCommand {
        DramCommand::Activate {
            bank: BankId::new(bank),
            row,
            slot,
        }
    }

    #[test]
    fn read_requires_open_row() {
        let mut c = ch(false);
        let err = c
            .issue(
                DramCommand::Read {
                    bank: BankId::new(0),
                    col: 0,
                },
                0,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::RowNotOpen { .. }));
    }

    #[test]
    fn trcd_enforced_between_act_and_read() {
        let mut c = ch(false);
        let info = c.issue(act(0, 5, Slot::Mem), 0).unwrap();
        assert_eq!(info.issued_at, 0);
        assert_eq!(info.done_at, 14); // tRCD
        let rd = DramCommand::Read {
            bank: BankId::new(0),
            col: 0,
        };
        // Too early: cycle 5 < tRCD.
        let err = c.issue_at(rd, 5).unwrap_err();
        assert!(matches!(
            err,
            SimError::TimingViolation { legal_at: 14, .. }
        ));
        let info = c.issue(rd, 0).unwrap();
        assert_eq!(info.issued_at, 14);
        assert_eq!(info.done_at, 14 + 14 + 2); // + tCL + tBL
    }

    #[test]
    fn faw_limits_burst_of_activates() {
        let mut c = ch(false);
        // Activate 5 banks in distinct bank groups (no tRRD_L coupling).
        let mut times = Vec::new();
        for i in 0..5 {
            let bank = i * 4; // one per bank group
            let info = c.issue(act(bank, 0, Slot::Mem), 0).unwrap();
            times.push(info.issued_at);
        }
        // First four are limited only by the C/A bus (1 cmd/cycle)...
        assert_eq!(&times[..4], &[0, 1, 2, 3]);
        // ...the fifth must wait for the tFAW window to roll past ACT#0.
        assert_eq!(times[4], 30);
    }

    #[test]
    fn trrd_l_spaces_same_group_activates() {
        let mut c = ch(false);
        let a = c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        let b = c.issue(act(1, 0, Slot::Mem), 0).unwrap(); // same group (banks 0-3)
        assert_eq!(b.issued_at - a.issued_at, 6); // tRRD_L
    }

    #[test]
    fn act_to_open_slot_is_structural_error() {
        let mut c = ch(false);
        c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        let err = c.issue(act(0, 1, Slot::Mem), 0).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn precharge_respects_tras_and_reopen_respects_trp() {
        let mut c = ch(false);
        c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        let pre = DramCommand::Precharge {
            bank: BankId::new(0),
            slot: Slot::Mem,
        };
        let info = c.issue(pre, 0).unwrap();
        assert_eq!(info.issued_at, 34); // tRAS
        let info = c.issue(act(0, 1, Slot::Mem), 0).unwrap();
        assert_eq!(info.issued_at, 34 + 14); // + tRP
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut c = ch(false);
        c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        let wr_info = c
            .issue(
                DramCommand::Write {
                    bank: BankId::new(0),
                    col: 0,
                },
                0,
            )
            .unwrap();
        // Write burst ends at issue + tCWL + tBL; PRE must wait tWR more.
        let pre_at = c
            .earliest_issue(&DramCommand::Precharge {
                bank: BankId::new(0),
                slot: Slot::Mem,
            })
            .unwrap();
        assert_eq!(pre_at, wr_info.done_at + 16); // tWR
    }

    #[test]
    fn dual_slots_hold_distinct_rows_but_not_the_same_row() {
        let mut c = ch(true);
        c.issue(act(0, 10, Slot::Mem), 0).unwrap();
        // A different row into the PIM buffer is fine.
        c.issue(act(0, 11, Slot::Pim), 0).unwrap();
        assert_eq!(c.bank(BankId::new(0)).open_row(Slot::Mem), Some(10));
        assert_eq!(c.bank(BankId::new(0)).open_row(Slot::Pim), Some(11));
        // Re-opening row 10 in the PIM buffer is the Figure 8(b) hazard.
        c.issue(
            DramCommand::Precharge {
                bank: BankId::new(0),
                slot: Slot::Pim,
            },
            0,
        )
        .unwrap();
        let err = c.issue(act(0, 10, Slot::Pim), 0).unwrap_err();
        assert!(matches!(err, SimError::RowBufferConflict { row: 10, .. }));
    }

    #[test]
    fn single_buffer_bank_blocks_second_activate() {
        // In a conventional bank, MEM and PIM share one row buffer: opening
        // a PIM row while a MEM row is open must fail (this is the "blocked
        // mode" the paper starts from).
        let mut c = ch(false);
        c.issue(act(0, 10, Slot::Mem), 0).unwrap();
        let err = c.issue(act(0, 11, Slot::Pim), 0).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn refresh_requires_closed_banks_and_blocks_channel() {
        let mut c = ch(false);
        c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        assert!(matches!(
            c.issue(DramCommand::RefreshAll, 0),
            Err(SimError::InvalidConfig(_))
        ));
        c.issue(DramCommand::PrechargeAll { slot: Slot::Mem }, 0)
            .unwrap();
        let info = c.issue(DramCommand::RefreshAll, 0).unwrap();
        assert_eq!(info.done_at - info.issued_at, 260); // tRFC
                                                        // The next activate waits for the refresh to complete.
        let nxt = c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        assert!(nxt.issued_at >= info.done_at);
        // And the next refresh is scheduled one tREFI later.
        assert_eq!(c.refresh_due(), 3900 * 2);
    }

    #[test]
    fn column_spacing_separates_bursts() {
        let mut c = ch(false);
        c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        c.issue(act(4, 0, Slot::Mem), 0).unwrap(); // different group
        let r0 = c
            .issue(
                DramCommand::Read {
                    bank: BankId::new(0),
                    col: 0,
                },
                0,
            )
            .unwrap();
        let r1 = c
            .issue(
                DramCommand::Read {
                    bank: BankId::new(4),
                    col: 0,
                },
                0,
            )
            .unwrap();
        // Different bank groups: spacing = max(tCCD_S, tBL) = tBL = 2.
        assert_eq!(r1.issued_at - r0.issued_at, 2);
        let r2 = c
            .issue(
                DramCommand::Read {
                    bank: BankId::new(4),
                    col: 1,
                },
                0,
            )
            .unwrap();
        // Same bank group: spacing = max(tCCD_L, tBL) = 2.
        assert_eq!(r2.issued_at - r1.issued_at, 2);
    }

    #[test]
    fn stats_count_commands() {
        let mut c = ch(true);
        c.issue(act(0, 0, Slot::Mem), 0).unwrap();
        c.issue(act(0, 1, Slot::Pim), 0).unwrap();
        c.issue(
            DramCommand::Read {
                bank: BankId::new(0),
                col: 0,
            },
            0,
        )
        .unwrap();
        let s = c.stats();
        assert_eq!(s.acts, 1);
        assert_eq!(s.pim_acts, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 64);
        assert_eq!(s.ca_busy, 3);
    }
}
