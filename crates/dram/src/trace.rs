//! Command-trace recording and independent protocol verification.
//!
//! [`TraceRecorder`] captures `(command, issue cycle)` pairs;
//! [`verify_protocol`] replays a trace against the JEDEC-style rules
//! *without* consulting the channel's internal bookkeeping, so tests (and
//! users debugging custom controllers) get an independent referee. The
//! property-test suite drives randomized command streams through a channel
//! and feeds the recorded trace through this verifier.

use neupims_types::{Cycle, HbmTiming, MemConfig, SimError};

use crate::bank::Slot;
use crate::command::DramCommand;

/// One recorded command issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The command.
    pub cmd: DramCommand,
    /// The cycle it occupied the C/A bus.
    pub at: Cycle,
}

/// An append-only command trace.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one issue.
    pub fn record(&mut self, cmd: DramCommand, at: Cycle) {
        self.entries.push(TraceEntry { cmd, at });
    }

    /// The recorded entries in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A protocol violation found by [`verify_protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that failed (e.g. `"tFAW"`).
    pub rule: &'static str,
    /// Index of the offending trace entry.
    pub index: usize,
    /// Human-readable details.
    pub detail: String,
}

/// Replays `trace` against the protocol rules and returns every violation
/// found (empty = protocol-clean). `dual` tells the verifier whether PIM
/// commands had their own row buffer or aliased the MEM buffer.
///
/// Checked rules: C/A single-issue ordering, tFAW (≤ 4 ACTs per window),
/// tRRD_L within a bank group, tRCD before column commands, data-bus burst
/// spacing (tBL), tRAS before precharge, and tRP before re-activation.
pub fn verify_protocol(
    trace: &[TraceEntry],
    t: &HbmTiming,
    mem: &MemConfig,
    dual: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let norm = |s: Slot| if dual { s } else { Slot::Mem };
    let group = |bank: u32| bank / mem.banks_per_bankgroup;

    // C/A bus: strictly increasing issue cycles.
    for (i, w) in trace.windows(2).enumerate() {
        if w[1].at <= w[0].at {
            out.push(Violation {
                rule: "C/A single-issue",
                index: i + 1,
                detail: format!("{} then {}", w[0].at, w[1].at),
            });
        }
    }

    // tFAW over the global ACT stream.
    let acts: Vec<(usize, Cycle)> = trace
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.cmd, DramCommand::Activate { .. }))
        .map(|(i, e)| (i, e.at))
        .collect();
    for w in acts.windows(5) {
        if w[4].1 - w[0].1 < t.t_faw {
            out.push(Violation {
                rule: "tFAW",
                index: w[4].0,
                detail: format!("5 ACTs within {} cycles", w[4].1 - w[0].1),
            });
        }
    }

    // tRRD_L per bank group.
    let mut last_group_act: std::collections::HashMap<u32, Cycle> = Default::default();
    // tRCD: ACT -> column per bank (MEM slot).
    let mut mem_act: std::collections::HashMap<u32, Cycle> = Default::default();
    // tRAS / tRP per (bank, physical slot).
    let mut act_at: std::collections::HashMap<(u32, bool), Cycle> = Default::default();
    let mut pre_at: std::collections::HashMap<(u32, bool), Cycle> = Default::default();
    // Data bus occupancy.
    let mut last_col: Option<Cycle> = None;

    for (i, e) in trace.iter().enumerate() {
        match e.cmd {
            DramCommand::Activate { bank, slot, .. } => {
                if let Some(&prev) = last_group_act.get(&group(bank.0)) {
                    if e.at - prev < t.t_rrd_l {
                        out.push(Violation {
                            rule: "tRRD_L",
                            index: i,
                            detail: format!(
                                "ACTs {} apart in group {}",
                                e.at - prev,
                                group(bank.0)
                            ),
                        });
                    }
                }
                last_group_act.insert(group(bank.0), e.at);
                let key = (bank.0, matches!(norm(slot), Slot::Pim));
                if let Some(&p) = pre_at.get(&key) {
                    if e.at < p + t.t_rp {
                        out.push(Violation {
                            rule: "tRP",
                            index: i,
                            detail: format!("ACT {} after PRE {}", e.at, p),
                        });
                    }
                }
                act_at.insert(key, e.at);
                if matches!(norm(slot), Slot::Mem) {
                    mem_act.insert(bank.0, e.at);
                }
            }
            DramCommand::Read { bank, .. } | DramCommand::Write { bank, .. } => {
                match mem_act.get(&bank.0) {
                    Some(&a) if e.at >= a + t.t_rcd => {}
                    Some(&a) => out.push(Violation {
                        rule: "tRCD",
                        index: i,
                        detail: format!("column at {} after ACT at {a}", e.at),
                    }),
                    None => out.push(Violation {
                        rule: "row-open",
                        index: i,
                        detail: format!("column command without ACT on bank {}", bank.0),
                    }),
                }
                if let Some(prev) = last_col {
                    if e.at - prev < t.t_bl {
                        out.push(Violation {
                            rule: "data-bus",
                            index: i,
                            detail: format!("bursts {} apart", e.at - prev),
                        });
                    }
                }
                last_col = Some(e.at);
            }
            DramCommand::Precharge { bank, slot } => {
                let key = (bank.0, matches!(norm(slot), Slot::Pim));
                if let Some(&a) = act_at.get(&key) {
                    if e.at < a + t.t_ras {
                        out.push(Violation {
                            rule: "tRAS",
                            index: i,
                            detail: format!("PRE {} after ACT {a}", e.at),
                        });
                    }
                }
                pre_at.insert(key, e.at);
            }
            DramCommand::PrechargeAll { .. } | DramCommand::RefreshAll => {}
        }
    }
    out
}

/// Convenience wrapper: returns an error carrying the first violation.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] describing the first protocol violation.
pub fn assert_protocol(
    trace: &[TraceEntry],
    t: &HbmTiming,
    mem: &MemConfig,
    dual: bool,
) -> Result<(), SimError> {
    match verify_protocol(trace, t, mem, dual).into_iter().next() {
        None => Ok(()),
        Some(v) => Err(SimError::InvalidConfig(format!(
            "protocol violation [{}] at trace index {}: {}",
            v.rule, v.index, v.detail
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neupims_types::BankId;

    fn entry(cmd: DramCommand, at: Cycle) -> TraceEntry {
        TraceEntry { cmd, at }
    }

    fn act(bank: u32, row: u32, at: Cycle) -> TraceEntry {
        entry(
            DramCommand::Activate {
                bank: BankId::new(bank),
                row,
                slot: Slot::Mem,
            },
            at,
        )
    }

    #[test]
    fn clean_trace_passes() {
        let t = HbmTiming::table2();
        let mem = MemConfig::table2();
        let trace = vec![
            act(0, 1, 0),
            entry(
                DramCommand::Read {
                    bank: BankId::new(0),
                    col: 0,
                },
                14,
            ),
            entry(
                DramCommand::Read {
                    bank: BankId::new(0),
                    col: 1,
                },
                16,
            ),
            entry(
                DramCommand::Precharge {
                    bank: BankId::new(0),
                    slot: Slot::Mem,
                },
                40,
            ),
        ];
        assert!(verify_protocol(&trace, &t, &mem, false).is_empty());
        assert_protocol(&trace, &t, &mem, false).unwrap();
    }

    #[test]
    fn trcd_violation_detected() {
        let t = HbmTiming::table2();
        let mem = MemConfig::table2();
        let trace = vec![
            act(0, 1, 0),
            entry(
                DramCommand::Read {
                    bank: BankId::new(0),
                    col: 0,
                },
                5,
            ),
        ];
        let v = verify_protocol(&trace, &t, &mem, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "tRCD");
        assert!(assert_protocol(&trace, &t, &mem, false).is_err());
    }

    #[test]
    fn tfaw_violation_detected() {
        let t = HbmTiming::table2();
        let mem = MemConfig::table2();
        // 5 ACTs to different groups 4 cycles apart: window = 16 < 30.
        let trace: Vec<TraceEntry> = (0..5).map(|i| act(i * 4, 0, (i as u64) * 4)).collect();
        let v = verify_protocol(&trace, &t, &mem, false);
        assert!(v.iter().any(|v| v.rule == "tFAW"), "{v:?}");
    }

    #[test]
    fn trrd_violation_detected() {
        let t = HbmTiming::table2();
        let mem = MemConfig::table2();
        let trace = vec![act(0, 0, 0), act(1, 0, 2)]; // same group, 2 < 6
        let v = verify_protocol(&trace, &t, &mem, false);
        assert!(v.iter().any(|v| v.rule == "tRRD_L"), "{v:?}");
    }

    #[test]
    fn recorder_accumulates() {
        let mut r = TraceRecorder::new();
        assert!(r.is_empty());
        r.record(
            DramCommand::Activate {
                bank: BankId::new(0),
                row: 0,
                slot: Slot::Mem,
            },
            5,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.entries()[0].at, 5);
    }
}
