//! Functional data mirror of a DRAM channel.
//!
//! Rows are lazily materialized slices of `f32`. The timing model is
//! data-oblivious; this mirror exists so PIM GEMV and NPU tile transfers can
//! be executed *functionally* through the same addresses the timing model
//! schedules, letting tests check computed values against reference math.
//!
//! Element width: the simulated machine operates on fp16 tensors, so timing
//! derives element counts from [`neupims_types::DataType::Fp16`]; the mirror
//! stores `f32` values (tests use tolerances where fp16 rounding matters).

use std::collections::HashMap;

use neupims_types::{BankId, SimError};

/// Functional storage of one channel: `(bank, row) -> row data`.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    rows: HashMap<(u32, u32), Box<[f32]>>,
    elems_per_row: usize,
}

impl Storage {
    /// Creates storage whose rows hold `elems_per_row` elements each.
    pub fn new(elems_per_row: usize) -> Self {
        Self {
            rows: HashMap::new(),
            elems_per_row,
        }
    }

    /// Elements per DRAM row.
    pub fn elems_per_row(&self) -> usize {
        self.elems_per_row
    }

    /// Number of rows materialized so far (for memory accounting in tests).
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    /// Writes `data` into `(bank, row)` starting at element `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidShape`] when the write would overflow the
    /// row.
    pub fn write(
        &mut self,
        bank: BankId,
        row: u32,
        offset: usize,
        data: &[f32],
    ) -> Result<(), SimError> {
        if offset + data.len() > self.elems_per_row {
            return Err(SimError::InvalidShape(format!(
                "write of {} elems at offset {offset} overflows row of {}",
                data.len(),
                self.elems_per_row
            )));
        }
        let row_data = self
            .rows
            .entry((bank.0, row))
            .or_insert_with(|| vec![0.0; self.elems_per_row].into_boxed_slice());
        row_data[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` elements from `(bank, row)` starting at element `offset`.
    ///
    /// Unmaterialized rows read as zeros (DRAM contents are undefined at
    /// power-up; zero is the convenient deterministic choice).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidShape`] when the read would overflow the
    /// row.
    pub fn read(
        &self,
        bank: BankId,
        row: u32,
        offset: usize,
        len: usize,
    ) -> Result<Vec<f32>, SimError> {
        if offset + len > self.elems_per_row {
            return Err(SimError::InvalidShape(format!(
                "read of {len} elems at offset {offset} overflows row of {}",
                self.elems_per_row
            )));
        }
        Ok(match self.rows.get(&(bank.0, row)) {
            Some(row_data) => row_data[offset..offset + len].to_vec(),
            None => vec![0.0; len],
        })
    }

    /// Borrow of a whole row, if materialized.
    pub fn row(&self, bank: BankId, row: u32) -> Option<&[f32]> {
        self.rows.get(&(bank.0, row)).map(|r| &**r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmaterialized_rows_read_zero() {
        let s = Storage::new(512);
        let v = s.read(BankId::new(0), 5, 10, 4).unwrap();
        assert_eq!(v, vec![0.0; 4]);
        assert_eq!(s.materialized_rows(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = Storage::new(512);
        s.write(BankId::new(2), 7, 100, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(
            s.read(BankId::new(2), 7, 99, 5).unwrap(),
            vec![0.0, 1.0, 2.0, 3.0, 0.0]
        );
        assert_eq!(s.materialized_rows(), 1);
    }

    #[test]
    fn overflow_is_rejected() {
        let mut s = Storage::new(8);
        assert!(s.write(BankId::new(0), 0, 6, &[0.0; 4]).is_err());
        assert!(s.read(BankId::new(0), 0, 8, 1).is_err());
        // Boundary cases are fine.
        s.write(BankId::new(0), 0, 4, &[0.0; 4]).unwrap();
        s.read(BankId::new(0), 0, 0, 8).unwrap();
    }

    #[test]
    fn rows_are_independent() {
        let mut s = Storage::new(4);
        s.write(BankId::new(0), 0, 0, &[1.0; 4]).unwrap();
        s.write(BankId::new(0), 1, 0, &[2.0; 4]).unwrap();
        s.write(BankId::new(1), 0, 0, &[3.0; 4]).unwrap();
        assert_eq!(s.read(BankId::new(0), 0, 0, 4).unwrap(), vec![1.0; 4]);
        assert_eq!(s.read(BankId::new(0), 1, 0, 4).unwrap(), vec![2.0; 4]);
        assert_eq!(s.read(BankId::new(1), 0, 0, 4).unwrap(), vec![3.0; 4]);
    }
}
