//! Property tests: every schedule the channel/controller produces obeys the
//! DRAM timing protocol, checked *post-hoc* from the command trace by the
//! independent verifier in `neupims_dram::trace`.

use proptest::prelude::*;

use neupims_dram::{
    verify_protocol, Controller, DramChannel, DramCommand, MemRequest, Slot, TraceRecorder,
};
use neupims_types::{BankId, HbmTiming, MemConfig};

fn small_mem() -> MemConfig {
    MemConfig {
        channels: 1,
        banks_per_channel: 8,
        banks_per_bankgroup: 4,
        capacity_per_channel: 8 * 64 * 1024, // 64 rows per bank
        page_bytes: 1024,
        bus_bytes_per_cycle: 32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FR-FCFS controller always emits protocol-legal schedules for
    /// arbitrary transaction mixes, and conserves bytes and transactions.
    #[test]
    fn controller_schedules_are_protocol_legal(
        reqs in prop::collection::vec(
            (0u32..8, 0u32..64, 0u32..8, 1u32..8, any::<bool>()),
            1..40,
        )
    ) {
        let mem = small_mem();
        let t = HbmTiming::table2();
        let mut ctrl = Controller::new(mem, t, false);
        let mut expected_bytes = 0u64;
        for (bank, row, col, cols, is_write) in reqs.iter().copied() {
            let cols = cols.min(16 - col.min(15)).max(1);
            let req = MemRequest { bank: BankId::new(bank), row, col_start: col.min(15), cols, is_write };
            expected_bytes += cols as u64 * 64;
            ctrl.enqueue(req);
        }
        let n = ctrl.pending();
        let done = ctrl.run_until_drained().unwrap();
        prop_assert_eq!(done.len(), n);
        let s = ctrl.channel().stats();
        prop_assert_eq!(s.bytes_read + s.bytes_written, expected_bytes);
        prop_assert_eq!((s.row_hits + s.row_misses) as usize, n);
    }

    /// Raw channel issue at `earliest_issue` always yields traces that pass
    /// the independent protocol verifier, in both bank flavors.
    #[test]
    fn random_command_streams_verify(
        ops in prop::collection::vec((0u32..8, 0u32..32, any::<bool>(), 0u32..16), 1..120),
        dual in any::<bool>(),
    ) {
        let mem = small_mem();
        let t = HbmTiming::table2();
        let mut ch = DramChannel::new(mem, t, dual);
        let mut trace = TraceRecorder::new();
        for (bank, row, use_pim, col) in ops {
            let bank_id = BankId::new(bank);
            let slot = if use_pim { Slot::Pim } else { Slot::Mem };
            let state = ch.bank(bank_id);
            // Drive a legal next command for this bank: open -> column or
            // precharge; closed -> activate.
            let cmd = match state.open_row(slot) {
                Some(_) if !use_pim && col < 8 => DramCommand::Read { bank: bank_id, col },
                Some(_) => DramCommand::Precharge { bank: bank_id, slot },
                None => {
                    if state.row_conflicts(slot, row) {
                        continue;
                    }
                    DramCommand::Activate { bank: bank_id, row, slot }
                }
            };
            // Structural errors are expected for some streams; skip them.
            match ch.issue(cmd, 0) {
                Ok(info) => trace.record(cmd, info.issued_at),
                Err(_) => continue,
            }
        }
        let violations = verify_protocol(trace.entries(), &t, &mem, dual);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// Dual-row-buffer banks never hold the same row in both slots.
    #[test]
    fn dual_slots_never_alias(
        rows in prop::collection::vec((0u32..4, any::<bool>()), 1..60),
    ) {
        let mem = small_mem();
        let mut ch = DramChannel::new(mem, HbmTiming::table2(), true);
        let bank = BankId::new(0);
        for (row, use_pim) in rows {
            let slot = if use_pim { Slot::Pim } else { Slot::Mem };
            if ch.bank(bank).open_row(slot).is_some() {
                ch.issue(DramCommand::Precharge { bank, slot }, 0).unwrap();
            }
            let _ = ch.issue(DramCommand::Activate { bank, row, slot }, 0);
            let b = ch.bank(bank);
            if let (Some(m), Some(p)) = (b.open_row(Slot::Mem), b.open_row(Slot::Pim)) {
                prop_assert_ne!(m, p, "same row in both buffers");
            }
        }
    }

    /// Auto-refresh never starves: any sufficiently long transaction stream
    /// refreshes at least once per ~tREFI worth of issue time.
    #[test]
    fn refresh_keeps_pace(
        rows in prop::collection::vec((0u32..8, 0u32..64), 200..400),
    ) {
        let mem = small_mem();
        let t = HbmTiming::table2();
        let mut ctrl = Controller::new(mem, t, false);
        for (bank, row) in rows {
            ctrl.enqueue(MemRequest::read(BankId::new(bank), row, 0, 16));
        }
        ctrl.run_until_drained().unwrap();
        let end = ctrl.now();
        let refreshes = ctrl.channel().stats().refreshes;
        if end > 2 * t.t_refi {
            prop_assert!(refreshes >= end / t.t_refi / 2,
                "end {} with only {} refreshes", end, refreshes);
        }
    }
}
