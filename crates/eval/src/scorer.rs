//! Grades executed scenarios against their golden expectations.
//!
//! The scorer never runs anything: it takes the spec (what should hold)
//! and the runner's metric maps (what did) and produces one
//! [`CheckResult`] per `[[scenario.expect]]` and `[[compare]]` block,
//! classified pass / warn / fail. A missing metric (e.g. a trace-only
//! metric under analytic pricing) is graded at the check's severity, so
//! a misspelled metric name can never silently pass.

use crate::runner::ScenarioRun;
use crate::spec::{Bound, Severity, SuiteSpec};

/// Verdict of one check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckStatus {
    /// The bound holds.
    Pass,
    /// The bound is violated, but the check was spec'd `severity = "warn"`.
    Warn,
    /// The bound is violated (or the metric is missing) on a
    /// `severity = "fail"` check.
    Fail,
}

impl CheckStatus {
    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            CheckStatus::Pass => "pass",
            CheckStatus::Warn => "warn",
            CheckStatus::Fail => "fail",
        }
    }
}

/// One graded expectation or compare.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Which scenario the check belongs to; compare checks use their own
    /// `[[compare]]` name and set `scenario` to `"(compare)"`.
    pub scenario: String,
    /// Metric key (for compares, `num/den metric` spelled out).
    pub metric: String,
    /// What was observed, when the metric existed.
    pub observed: Option<f64>,
    /// The acceptance band.
    pub bound: Bound,
    /// Spec'd severity.
    pub severity: Severity,
    /// The verdict.
    pub status: CheckStatus,
}

impl CheckResult {
    fn grade(
        scenario: String,
        metric: String,
        observed: Option<f64>,
        bound: Bound,
        severity: Severity,
    ) -> Self {
        let ok = observed.map(|v| v.is_finite() && bound.holds(v));
        let status = match (ok, severity) {
            (Some(true), _) => CheckStatus::Pass,
            (_, Severity::Warn) => CheckStatus::Warn,
            (_, Severity::Fail) => CheckStatus::Fail,
        };
        CheckResult {
            scenario,
            metric,
            observed,
            bound,
            severity,
            status,
        }
    }
}

/// Grades every expectation and compare of a suite.
///
/// `runs` must be the runner's output for the same `suite` (matched by
/// scenario name).
pub fn score_suite(suite: &SuiteSpec, runs: &[ScenarioRun]) -> Vec<CheckResult> {
    let metric_of = |scenario: &str, metric: &str| -> Option<f64> {
        runs.iter()
            .find(|r| r.name == scenario)
            .and_then(|r| r.metric(metric))
    };

    let mut checks = Vec::new();
    for scenario in &suite.scenarios {
        for e in &scenario.expects {
            checks.push(CheckResult::grade(
                scenario.name.clone(),
                e.metric.clone(),
                metric_of(&scenario.name, &e.metric),
                e.bound,
                e.severity,
            ));
        }
    }
    for c in &suite.compares {
        let num = metric_of(&c.numerator, &c.metric);
        let den = metric_of(&c.denominator, &c.metric);
        let ratio = match (num, den) {
            (Some(n), Some(d)) if d.abs() > 1e-12 => Some(n / d),
            _ => None,
        };
        checks.push(CheckResult::grade(
            format!("(compare) {}", c.name),
            format!("{}/{} {}", c.numerator, c.denominator, c.metric),
            ratio,
            c.bound,
            c.severity,
        ));
    }
    checks
}

/// The suite verdict: the worst individual check status (pass when there
/// are no checks at all).
pub fn verdict(checks: &[CheckResult]) -> CheckStatus {
    checks
        .iter()
        .map(|c| c.status)
        .max()
        .unwrap_or(CheckStatus::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Metrics;
    use crate::spec::SuiteSpec;

    fn runs() -> Vec<ScenarioRun> {
        let mut fast = Metrics::new();
        fast.insert("tokens_per_sec".into(), 200.0);
        let mut slow = Metrics::new();
        slow.insert("tokens_per_sec".into(), 100.0);
        vec![
            ScenarioRun {
                name: "fast".into(),
                kind: "throughput",
                metrics: fast,
            },
            ScenarioRun {
                name: "slow".into(),
                kind: "throughput",
                metrics: slow,
            },
        ]
    }

    const SUITE: &str = r#"
[suite]
name = "s"

[[scenario]]
name = "fast"
kind = "throughput"

[[scenario.expect]]
metric = "tokens_per_sec"
value = 210.0
tol = 0.10

[[scenario.expect]]
metric = "does_not_exist"
min = 0.0
severity = "warn"

[[scenario]]
name = "slow"
kind = "throughput"

[[scenario.expect]]
metric = "tokens_per_sec"
max = 150.0

[[compare]]
name = "speedup"
metric = "tokens_per_sec"
numerator = "fast"
denominator = "slow"
min = 1.5
"#;

    #[test]
    fn grades_expectations_and_compares() {
        let suite = SuiteSpec::parse(SUITE).unwrap();
        let checks = score_suite(&suite, &runs());
        assert_eq!(checks.len(), 4);
        // 200 within 210 ± 10%.
        assert_eq!(checks[0].status, CheckStatus::Pass);
        // Missing metric at warn severity.
        assert_eq!(checks[1].status, CheckStatus::Warn);
        assert_eq!(checks[1].observed, None);
        assert_eq!(checks[2].status, CheckStatus::Pass);
        // 200/100 = 2.0 >= 1.5.
        assert_eq!(checks[3].status, CheckStatus::Pass);
        assert_eq!(checks[3].observed, Some(2.0));
        assert_eq!(verdict(&checks), CheckStatus::Warn);
    }

    #[test]
    fn fail_outranks_warn() {
        let suite = SuiteSpec::parse(SUITE).unwrap();
        let mut bad = runs();
        bad[0].metrics.insert("tokens_per_sec".into(), 120.0);
        let checks = score_suite(&suite, &bad);
        // 120 outside 210 ± 10% -> fail; ratio 1.2 < 1.5 -> fail.
        assert_eq!(checks[0].status, CheckStatus::Fail);
        assert_eq!(checks[3].status, CheckStatus::Fail);
        assert_eq!(verdict(&checks), CheckStatus::Fail);
    }

    #[test]
    fn empty_suite_passes() {
        assert_eq!(verdict(&[]), CheckStatus::Pass);
    }
}
