//! Typed scenario/suite specs, parsed from `scenarios/*.toml`.
//!
//! A **suite** is one TOML file: a `[suite]` header, one or more
//! `[[scenario]]` experiments, and optional `[[compare]]` cross-scenario
//! ratio checks. Each scenario is either
//!
//! * `kind = "throughput"` — warm-batch decode throughput of one backend
//!   (the Figure 12 / Table 3 quantity), or
//! * `kind = "serving"` — an arrival-driven serving run (single replica
//!   or a dispatched fleet) over a declarative workload: an arrival
//!   process from [`neupims_workload::scenario`], per-tenant length
//!   distributions, and optional tight-memory hardware overrides. The
//!   `autoscale` / `router` / `min-replicas` keys lift the run into the
//!   meta-orchestrator (tenant SLO classes via per-tenant `priority` /
//!   `slo-ttft-ms` / `slo-tpot-ms` keys, admission control, capability
//!   routing), surfacing `goodput_per_cost` and per-tenant metrics.
//!
//! Golden expectations live in `[[scenario.expect]]` blocks (absolute
//! value ± relative tolerance, or min/max bounds) and `[[compare]]`
//! blocks (ratio of one scenario's metric over another's) — the checks
//! the scorer grades into pass/warn/fail. See `docs/EVAL.md` for the
//! full schema and `scenarios/` for the shipped suites.

use std::fmt;

use neupims_core::orchestrator::{
    autoscale_from_name, router_from_name, AUTOSCALE_NAMES, ROUTER_NAMES,
};
use neupims_sched::CostModelKind;
use neupims_types::{Cycle, LlmConfig};
use neupims_workload::scenario::{ArrivalProcess, LengthDistribution, TenantClass, TenantMix};
use neupims_workload::Dataset;

use crate::toml::{parse as parse_toml, Table, Value};

/// A spec-level failure: schema violations, unknown names, bad bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn serr<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// How severe a failed check is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// A violation fails the suite (non-zero exit; CI gate).
    #[default]
    Fail,
    /// A violation is reported but does not fail the suite.
    Warn,
}

impl Severity {
    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Fail => "fail",
            Severity::Warn => "warn",
        }
    }
}

/// The acceptance band of one expectation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Observed must be within `value · (1 ± tol)`.
    Golden {
        /// The golden value.
        value: f64,
        /// Relative tolerance (0.10 = ±10%).
        tol: f64,
    },
    /// Observed must be at least this.
    Min(f64),
    /// Observed must be at most this.
    Max(f64),
    /// Observed must be within `[lo, hi]`.
    Range(f64, f64),
}

impl Bound {
    /// Whether `observed` satisfies the bound.
    pub fn holds(&self, observed: f64) -> bool {
        match *self {
            Bound::Golden { value, tol } => {
                let band = value.abs() * tol;
                (observed - value).abs() <= band
            }
            Bound::Min(lo) => observed >= lo,
            Bound::Max(hi) => observed <= hi,
            Bound::Range(lo, hi) => observed >= lo && observed <= hi,
        }
    }

    /// Human-readable band, for report rows.
    pub fn describe(&self) -> String {
        match *self {
            Bound::Golden { value, tol } => format!("{value:.4} ±{:.0}%", tol * 100.0),
            Bound::Min(lo) => format!(">= {lo:.4}"),
            Bound::Max(hi) => format!("<= {hi:.4}"),
            Bound::Range(lo, hi) => format!("[{lo:.4}, {hi:.4}]"),
        }
    }
}

/// One golden expectation on a scenario metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Metric key (a runner-produced metric name).
    pub metric: String,
    /// The acceptance band.
    pub bound: Bound,
    /// What a violation means for the suite verdict.
    pub severity: Severity,
}

/// A cross-scenario ratio check: `numerator.metric / denominator.metric`
/// against a bound — how Figure 12's "NeuPIMs is 1.6x over NPU+PIM"
/// claims are spec'd.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareSpec {
    /// Check label (surfaced in reports).
    pub name: String,
    /// Metric key read from both scenarios.
    pub metric: String,
    /// Scenario name providing the numerator.
    pub numerator: String,
    /// Scenario name providing the denominator.
    pub denominator: String,
    /// The acceptance band on the ratio.
    pub bound: Bound,
    /// What a violation means for the suite verdict.
    pub severity: Severity,
}

/// What a scenario measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Arrival-driven serving (single replica or fleet).
    Serving,
    /// Warm-batch decode throughput (the Figure 12 bars).
    Throughput,
}

impl ScenarioKind {
    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Serving => "serving",
            ScenarioKind::Throughput => "throughput",
        }
    }
}

/// The system-under-test half of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Backend name(s); comma-separated lists cycle over fleet replicas.
    pub backend: String,
    /// Scheduler name(s); comma-separated lists cycle over replicas.
    pub scheduler: String,
    /// Per-iteration prefill token budget of chunked schedulers.
    pub chunk_tokens: u32,
    /// Preemption policy name.
    pub preemption: String,
    /// MHA cost model.
    pub cost_model: CostModelKind,
    /// Serving replicas (1 = single `ServingSim`; >1 = `FleetSim`).
    pub replicas: usize,
    /// Fleet dispatch policy name.
    pub dispatch: String,
    /// Max decode batch per replica.
    pub max_batch: usize,
    /// Model under test.
    pub model: LlmConfig,
    /// Swap-link bandwidth (GB/s) for the swap preemption policy.
    pub swap_gbps: f64,
    /// SLO TTFT target, milliseconds.
    pub slo_ttft_ms: f64,
    /// SLO TPOT target, milliseconds.
    pub slo_tpot_ms: f64,
    /// Memory-channel count override (tight-KV pressure scenarios).
    pub channels: Option<u32>,
    /// Per-channel KV capacity override, MiB.
    pub kv_mib_per_channel: Option<u64>,
    /// Multi-chip tensor-parallel degree: wraps the backend in a
    /// sharded deployment when set (alone or with `pp`).
    pub tp: Option<u32>,
    /// Multi-chip pipeline-parallel degree.
    pub pp: Option<u32>,
    /// Interconnect fabric pricing the sharded collectives
    /// (`pcie` | `unified` | `noc` | `ideal`; default `pcie`).
    pub interconnect: Option<String>,
    /// Per-link bandwidth override for the fabric, GB/s.
    pub link_gbps: Option<f64>,
    /// Autoscale policy name (`static` | `reactive` | `predictive`):
    /// routes the scenario through the meta-orchestrator instead of a
    /// bare fleet when set (alone or with `router`/`min-replicas`).
    pub autoscale: Option<String>,
    /// Route policy name (`load` | `round-robin` | `capability`).
    pub router: Option<String>,
    /// Autoscale floor: slots kept committed even when idle. Defaults to
    /// `replicas` under static scale and 1 otherwise.
    pub min_replicas: Option<usize>,
}

impl SystemSpec {
    /// True when `tp`/`pp` ask for a multi-chip sharded deployment.
    pub fn sharding_requested(&self) -> bool {
        self.tp.is_some() || self.pp.is_some()
    }

    /// True when `autoscale`/`router`/`min-replicas` ask for the
    /// meta-orchestrator above the fleet.
    pub fn orchestration_requested(&self) -> bool {
        self.autoscale.is_some() || self.router.is_some() || self.min_replicas.is_some()
    }
}

/// The workload half of a serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Total requests to generate and submit.
    pub requests: usize,
    /// Workload RNG seed (CLI `--seed` overrides).
    pub seed: u64,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Tenant mix supplying per-request lengths.
    pub tenants: TenantMix,
    /// Orchestrator-facing policy of each tenant, aligned with
    /// `tenants.classes()` order.
    pub tenant_policies: Vec<TenantPolicy>,
    /// Cap on sampled output lengths (keeps suites fast), if any.
    pub output_cap: Option<u32>,
}

/// The serving contract of one tenant class, consumed by the
/// meta-orchestrator (ignored by plain fleet scenarios): admission
/// priority plus optional per-tenant SLO overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPolicy {
    /// Admission priority (0-255). At or above the admission floor the
    /// tenant bypasses shedding entirely.
    pub priority: u8,
    /// Per-tenant TTFT target (ms); the scenario SLO when absent.
    pub slo_ttft_ms: Option<f64>,
    /// Per-tenant TPOT target (ms); the scenario SLO when absent.
    pub slo_tpot_ms: Option<f64>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            priority: 200,
            slo_ttft_ms: None,
            slo_tpot_ms: None,
        }
    }
}

/// One named experiment of a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (unique within the suite; compare blocks reference
    /// it).
    pub name: String,
    /// What the scenario measures.
    pub kind: ScenarioKind,
    /// The system under test.
    pub system: SystemSpec,
    /// The workload (serving scenarios only).
    pub workload: Option<WorkloadSpec>,
    /// Warm-batch size (throughput scenarios).
    pub batch: usize,
    /// Warm batches averaged (throughput scenarios).
    pub samples: usize,
    /// Dataset of throughput warm batches.
    pub dataset: Dataset,
    /// RNG seed of throughput sampling.
    pub seed: u64,
    /// Golden expectations on this scenario's metrics.
    pub expects: Vec<Expectation>,
}

/// A parsed suite: the unit `neupims-sim eval <suite>` executes.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteSpec {
    /// Suite name (the file stem by convention).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The experiments, in file order.
    pub scenarios: Vec<ScenarioSpec>,
    /// Cross-scenario ratio checks.
    pub compares: Vec<CompareSpec>,
}

impl SuiteSpec {
    /// Parses a suite from TOML text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on TOML syntax errors, schema violations,
    /// unknown names, or compare blocks referencing missing scenarios.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let root = parse_toml(text).map_err(|e| SpecError(e.to_string()))?;
        let suite = table(&root, "suite")?;
        let name = string(suite, "name")?;
        let description = opt_string(suite, "description")?.unwrap_or_default();

        let mut scenarios = Vec::new();
        for (i, sc) in tables_of(&root, "scenario")?.iter().enumerate() {
            scenarios.push(
                parse_scenario(sc)
                    .map_err(|e| SpecError(format!("scenario #{}: {}", i + 1, e.0)))?,
            );
        }
        if scenarios.is_empty() {
            return serr("a suite needs at least one [[scenario]]");
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &scenarios {
            if !seen.insert(s.name.clone()) {
                return serr(format!("duplicate scenario name {:?}", s.name));
            }
        }

        let mut compares = Vec::new();
        for (i, cmp) in tables_of(&root, "compare")?.iter().enumerate() {
            let c = parse_compare(cmp)
                .map_err(|e| SpecError(format!("compare #{}: {}", i + 1, e.0)))?;
            for side in [&c.numerator, &c.denominator] {
                if !seen.contains(side) {
                    return serr(format!(
                        "compare {:?} references unknown scenario {side:?}",
                        c.name
                    ));
                }
            }
            compares.push(c);
        }

        Ok(SuiteSpec {
            name,
            description,
            scenarios,
            compares,
        })
    }
}

// ------------------------------------------------------------ field access

fn table<'a>(t: &'a Table, key: &str) -> Result<&'a Table, SpecError> {
    match t.get(key) {
        Some(Value::Table(inner)) => Ok(inner),
        Some(v) => serr(format!("[{key}] must be a table, got {}", v.type_name())),
        None => serr(format!("missing [{key}] table")),
    }
}

/// The `[[key]]` elements, or empty when absent.
fn tables_of<'a>(t: &'a Table, key: &str) -> Result<Vec<&'a Table>, SpecError> {
    match t.get(key) {
        None => Ok(Vec::new()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_table()
                    .ok_or_else(|| SpecError(format!("[[{key}]] elements must be tables")))
            })
            .collect(),
        Some(v) => serr(format!(
            "[[{key}]] must be an array of tables, got {}",
            v.type_name()
        )),
    }
}

fn string(t: &Table, key: &str) -> Result<String, SpecError> {
    opt_string(t, key)?.ok_or_else(|| SpecError(format!("missing key {key:?}")))
}

fn opt_string(t: &Table, key: &str) -> Result<Option<String>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(v) => serr(format!("{key:?} must be a string, got {}", v.type_name())),
    }
}

fn opt_f64(t: &Table, key: &str) -> Result<Option<f64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| SpecError(format!("{key:?} must be a number, got {}", v.type_name()))),
    }
}

/// An optional policy-name key validated against its registry at parse
/// time, so a typo'd autoscaler or router fails at spec load, not
/// mid-run.
fn opt_name(
    t: &Table,
    key: &str,
    known: &[&str],
    valid: fn(&str) -> bool,
) -> Result<Option<String>, SpecError> {
    match opt_string(t, key)? {
        None => Ok(None),
        Some(name) if valid(&name) => Ok(Some(name)),
        Some(name) => serr(format!(
            "unknown {key} {name:?} (expected one of [{}])",
            known.join(", ")
        )),
    }
}

fn opt_usize(t: &Table, key: &str) -> Result<Option<usize>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(|u| Some(u as usize)).ok_or_else(|| {
            SpecError(format!(
                "{key:?} must be a non-negative integer, got {}",
                v.type_name()
            ))
        }),
    }
}

// --------------------------------------------------------------- scenarios

/// Parses a model name into its [`LlmConfig`] (the CLI's `--model` names).
pub fn model_from_name(name: &str) -> Result<LlmConfig, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "gpt3-7b" | "7b" => Ok(LlmConfig::gpt3_7b()),
        "gpt3-13b" | "13b" => Ok(LlmConfig::gpt3_13b()),
        "gpt3-30b" | "30b" => Ok(LlmConfig::gpt3_30b()),
        "gpt3-175b" | "175b" => Ok(LlmConfig::gpt3_175b()),
        other => serr(format!("unknown model {other:?}")),
    }
}

/// Parses a dataset name (the CLI's `--dataset` names).
pub fn dataset_from_name(name: &str) -> Result<Dataset, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "sharegpt" => Ok(Dataset::ShareGpt),
        "alpaca" => Ok(Dataset::Alpaca),
        other => serr(format!("unknown dataset {other:?}")),
    }
}

fn parse_scenario(t: &Table) -> Result<ScenarioSpec, SpecError> {
    let name = string(t, "name")?;
    let kind = match opt_string(t, "kind")?.as_deref() {
        None | Some("serving") => ScenarioKind::Serving,
        Some("throughput") => ScenarioKind::Throughput,
        Some(other) => return serr(format!("unknown kind {other:?}")),
    };
    let dataset = match opt_string(t, "dataset")? {
        Some(d) => dataset_from_name(&d)?,
        None => Dataset::ShareGpt,
    };
    let model = match opt_string(t, "model")? {
        Some(m) => model_from_name(&m)?,
        None => LlmConfig::gpt3_7b(),
    };
    let cost_model = match opt_string(t, "cost-model")? {
        Some(c) => CostModelKind::from_name(&c)
            .ok_or_else(|| SpecError(format!("unknown cost model {c:?}")))?,
        None => CostModelKind::Analytic,
    };
    let system = SystemSpec {
        backend: opt_string(t, "backend")?.unwrap_or_else(|| "neupims".into()),
        scheduler: opt_string(t, "scheduler")?.unwrap_or_else(|| "lump".into()),
        chunk_tokens: opt_usize(t, "chunk-tokens")?.unwrap_or(256) as u32,
        preemption: opt_string(t, "preemption")?.unwrap_or_else(|| "drop".into()),
        cost_model,
        replicas: opt_usize(t, "replicas")?.unwrap_or(1).max(1),
        dispatch: opt_string(t, "dispatch")?.unwrap_or_else(|| "jsq".into()),
        max_batch: opt_usize(t, "max-batch")?.unwrap_or(32).max(1),
        model,
        swap_gbps: opt_f64(t, "swap-gbps")?.unwrap_or(32.0),
        slo_ttft_ms: opt_f64(t, "slo-ttft-ms")?.unwrap_or(50.0),
        slo_tpot_ms: opt_f64(t, "slo-tpot-ms")?.unwrap_or(10.0),
        channels: opt_usize(t, "channels")?.map(|c| c as u32),
        kv_mib_per_channel: opt_usize(t, "kv-mib-per-channel")?.map(|m| m as u64),
        tp: opt_usize(t, "tp")?.map(|v| v as u32),
        pp: opt_usize(t, "pp")?.map(|v| v as u32),
        interconnect: opt_string(t, "interconnect")?,
        link_gbps: opt_f64(t, "link-gbps")?,
        autoscale: opt_name(t, "autoscale", &AUTOSCALE_NAMES, |n| {
            autoscale_from_name(n).is_ok()
        })?,
        router: opt_name(t, "router", &ROUTER_NAMES, |n| router_from_name(n).is_ok())?,
        min_replicas: opt_usize(t, "min-replicas")?,
    };

    let seed = opt_usize(t, "seed")?.unwrap_or(0xE7A1) as u64;
    let workload = match kind {
        ScenarioKind::Throughput => None,
        ScenarioKind::Serving => Some(parse_workload(t, dataset, seed)?),
    };

    let mut expects = Vec::new();
    for (i, e) in tables_of(t, "expect")?.iter().enumerate() {
        expects.push(
            parse_expect(e).map_err(|err| SpecError(format!("expect #{}: {}", i + 1, err.0)))?,
        );
    }

    Ok(ScenarioSpec {
        name,
        kind,
        system,
        workload,
        batch: opt_usize(t, "batch")?.unwrap_or(256),
        samples: opt_usize(t, "samples")?.unwrap_or(4).max(1),
        dataset,
        seed,
        expects,
    })
}

fn parse_workload(t: &Table, dataset: Dataset, seed: u64) -> Result<WorkloadSpec, SpecError> {
    let requests = opt_usize(t, "requests")?.unwrap_or(32).max(1);
    let arrival = match t.get("arrival") {
        None => ArrivalProcess::Poisson {
            rate: opt_f64(t, "rate")?.unwrap_or(3.0),
        },
        Some(Value::Table(a)) => parse_arrival(a)?,
        Some(v) => {
            return serr(format!(
                "[scenario.arrival] must be a table, got {}",
                v.type_name()
            ))
        }
    };
    let tenant_tables = tables_of(t, "tenant")?;
    let (tenants, tenant_policies) = if tenant_tables.is_empty() {
        (TenantMix::single(dataset), vec![TenantPolicy::default()])
    } else {
        let mut classes = Vec::new();
        let mut policies = Vec::new();
        for (i, tt) in tenant_tables.iter().enumerate() {
            let (class, policy) =
                parse_tenant(tt).map_err(|e| SpecError(format!("tenant #{}: {}", i + 1, e.0)))?;
            classes.push(class);
            policies.push(policy);
        }
        (TenantMix::new(classes), policies)
    };
    Ok(WorkloadSpec {
        requests,
        seed,
        arrival,
        tenants,
        tenant_policies,
        output_cap: opt_usize(t, "output-cap")?.map(|c| c as u32),
    })
}

fn parse_arrival(a: &Table) -> Result<ArrivalProcess, SpecError> {
    let rate = opt_f64(a, "rate")?.unwrap_or(3.0);
    if rate <= 0.0 {
        return serr("arrival rate must be positive");
    }
    match opt_string(a, "process")?.as_deref().unwrap_or("poisson") {
        "poisson" => Ok(ArrivalProcess::Poisson { rate }),
        "bursty" => Ok(ArrivalProcess::Bursty {
            rate,
            burst_size: opt_usize(a, "burst-size")?.unwrap_or(8).max(1),
        }),
        "diurnal" => {
            let amplitude = opt_f64(a, "amplitude")?.unwrap_or(0.8);
            if !(0.0..1.0).contains(&amplitude) {
                return serr("diurnal amplitude must be in [0, 1)");
            }
            let period_mcycles = opt_f64(a, "period-mcycles")?.unwrap_or(50.0);
            if period_mcycles <= 0.0 {
                return serr("diurnal period-mcycles must be positive");
            }
            Ok(ArrivalProcess::Diurnal {
                rate,
                amplitude,
                period: (period_mcycles * 1e6) as Cycle,
            })
        }
        "heavy-tailed" | "pareto" => {
            let alpha = opt_f64(a, "alpha")?.unwrap_or(1.5);
            if alpha <= 1.0 {
                return serr("heavy-tailed alpha must exceed 1");
            }
            Ok(ArrivalProcess::HeavyTailed { rate, alpha })
        }
        other => serr(format!("unknown arrival process {other:?}")),
    }
}

/// Parses a compact length-distribution array:
/// `["dataset-input", "sharegpt"]`, `["dataset-output", "alpaca"]`,
/// `["lognormal", mean, sigma]`, `["uniform", lo, hi]`, `["fixed", n]`.
fn parse_length(v: &Value, key: &str) -> Result<LengthDistribution, SpecError> {
    let Some(arr) = v.as_array() else {
        return serr(format!(
            "{key:?} must be an array like [\"lognormal\", 80.0, 0.9]"
        ));
    };
    let kind = arr
        .first()
        .and_then(Value::as_str)
        .ok_or_else(|| SpecError(format!("{key:?} must start with a distribution name")))?;
    let num = |i: usize| -> Result<f64, SpecError> {
        arr.get(i)
            .and_then(Value::as_f64)
            .ok_or_else(|| SpecError(format!("{key:?}[{i}] must be a number")))
    };
    match kind {
        "dataset-input" => {
            let d = arr
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| SpecError(format!("{key:?}[1] must be a dataset name")))?;
            Ok(LengthDistribution::DatasetInput(dataset_from_name(d)?))
        }
        "dataset-output" => {
            let d = arr
                .get(1)
                .and_then(Value::as_str)
                .ok_or_else(|| SpecError(format!("{key:?}[1] must be a dataset name")))?;
            Ok(LengthDistribution::DatasetOutput(dataset_from_name(d)?))
        }
        "lognormal" => Ok(LengthDistribution::LogNormal {
            mean: num(1)?,
            sigma: num(2)?,
        }),
        "uniform" => Ok(LengthDistribution::Uniform {
            lo: num(1)? as u32,
            hi: num(2)? as u32,
        }),
        "fixed" => Ok(LengthDistribution::Fixed(num(1)? as u32)),
        other => serr(format!("unknown length distribution {other:?}")),
    }
}

fn parse_tenant(t: &Table) -> Result<(TenantClass, TenantPolicy), SpecError> {
    let name = string(t, "name")?;
    let weight = opt_f64(t, "weight")?.unwrap_or(1.0);
    if weight <= 0.0 {
        return serr(format!("tenant {name:?} weight must be positive"));
    }
    let input = match t.get("input") {
        Some(v) => parse_length(v, "input")?,
        None => return serr(format!("tenant {name:?} missing \"input\" distribution")),
    };
    let output = match t.get("output") {
        Some(v) => parse_length(v, "output")?,
        None => return serr(format!("tenant {name:?} missing \"output\" distribution")),
    };
    let priority = match opt_usize(t, "priority")? {
        Some(p) if p <= u8::MAX as usize => p as u8,
        Some(p) => return serr(format!("tenant {name:?} priority {p} exceeds 255")),
        None => TenantPolicy::default().priority,
    };
    let policy = TenantPolicy {
        priority,
        slo_ttft_ms: opt_f64(t, "slo-ttft-ms")?,
        slo_tpot_ms: opt_f64(t, "slo-tpot-ms")?,
    };
    Ok((
        TenantClass {
            name,
            weight,
            input,
            output,
        },
        policy,
    ))
}

// -------------------------------------------------------------- bounds

fn parse_severity(t: &Table) -> Result<Severity, SpecError> {
    match opt_string(t, "severity")?.as_deref() {
        None | Some("fail") => Ok(Severity::Fail),
        Some("warn") => Ok(Severity::Warn),
        Some(other) => serr(format!("unknown severity {other:?} (fail|warn)")),
    }
}

fn parse_bound(t: &Table) -> Result<Bound, SpecError> {
    let value = opt_f64(t, "value")?;
    let tol = opt_f64(t, "tol")?;
    let min = opt_f64(t, "min")?;
    let max = opt_f64(t, "max")?;
    match (value, min, max) {
        (Some(v), None, None) => {
            let tol = tol.unwrap_or(0.10);
            if tol < 0.0 {
                return serr("tol must be non-negative");
            }
            Ok(Bound::Golden { value: v, tol })
        }
        (None, Some(lo), Some(hi)) if lo <= hi => Ok(Bound::Range(lo, hi)),
        (None, Some(lo), Some(hi)) => serr(format!("empty range [{lo}, {hi}]")),
        (None, Some(lo), None) => Ok(Bound::Min(lo)),
        (None, None, Some(hi)) => Ok(Bound::Max(hi)),
        (Some(_), _, _) => serr("give either value(+tol) or min/max, not both"),
        (None, None, None) => serr("an expectation needs value, min, or max"),
    }
}

fn parse_expect(t: &Table) -> Result<Expectation, SpecError> {
    Ok(Expectation {
        metric: string(t, "metric")?,
        bound: parse_bound(t)?,
        severity: parse_severity(t)?,
    })
}

fn parse_compare(t: &Table) -> Result<CompareSpec, SpecError> {
    Ok(CompareSpec {
        name: string(t, "name")?,
        metric: opt_string(t, "metric")?.unwrap_or_else(|| "tokens_per_sec".into()),
        numerator: string(t, "numerator")?,
        denominator: string(t, "denominator")?,
        bound: parse_bound(t)?,
        severity: parse_severity(t)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUITE: &str = r#"
[suite]
name = "demo"
description = "exercises every spec feature"

[[scenario]]
name = "burst"
kind = "serving"
model = "gpt3-7b"
backend = "neupims"
scheduler = "interleaved"
preemption = "recompute"
max-batch = 16
requests = 24
seed = 11
channels = 4
kv-mib-per-channel = 80
output-cap = 128

[scenario.arrival]
process = "bursty"
rate = 2.0
burst-size = 8

[[scenario.tenant]]
name = "chat"
weight = 3.0
input = ["lognormal", 80.0, 0.9]
output = ["fixed", 200]

[[scenario.tenant]]
name = "bulk"
input = ["uniform", 256, 512]
output = ["dataset-output", "alpaca"]

[[scenario.expect]]
metric = "completed"
min = 20.0

[[scenario]]
name = "thr-neupims"
kind = "throughput"
backend = "neupims"
batch = 256
samples = 2

[[scenario.expect]]
metric = "tokens_per_sec"
value = 30000.0
tol = 0.2
severity = "warn"

[[compare]]
name = "ratio"
metric = "tokens_per_sec"
numerator = "thr-neupims"
denominator = "burst"
min = 0.5
"#;

    #[test]
    fn parses_every_feature() {
        let suite = SuiteSpec::parse(SUITE).unwrap();
        assert_eq!(suite.name, "demo");
        assert_eq!(suite.scenarios.len(), 2);
        let s = &suite.scenarios[0];
        assert_eq!(s.kind, ScenarioKind::Serving);
        assert_eq!(s.system.channels, Some(4));
        let w = s.workload.as_ref().unwrap();
        assert_eq!(w.requests, 24);
        assert_eq!(w.seed, 11);
        assert_eq!(
            w.arrival,
            ArrivalProcess::Bursty {
                rate: 2.0,
                burst_size: 8
            }
        );
        assert_eq!(w.tenants.classes().len(), 2);
        assert_eq!(w.tenant_policies.len(), 2);
        assert_eq!(w.tenant_policies[0], TenantPolicy::default());
        assert_eq!(w.output_cap, Some(128));
        assert!(!s.system.orchestration_requested());
        assert_eq!(s.expects[0].bound, Bound::Min(20.0));
        let t = &suite.scenarios[1];
        assert_eq!(t.kind, ScenarioKind::Throughput);
        assert_eq!(t.expects[0].severity, Severity::Warn);
        assert_eq!(suite.compares.len(), 1);
    }

    #[test]
    fn rejects_dangling_compares_and_duplicates() {
        let bad = SUITE.replace("denominator = \"burst\"", "denominator = \"nope\"");
        let e = SuiteSpec::parse(&bad).unwrap_err();
        assert!(e.0.contains("unknown scenario"), "{e}");

        let dup = SUITE.replace("name = \"thr-neupims\"", "name = \"burst\"");
        let e = SuiteSpec::parse(&dup).unwrap_err();
        assert!(e.0.contains("duplicate scenario name"), "{e}");
    }

    #[test]
    fn bound_semantics() {
        assert!(Bound::Golden {
            value: 100.0,
            tol: 0.1
        }
        .holds(109.0));
        assert!(!Bound::Golden {
            value: 100.0,
            tol: 0.1
        }
        .holds(111.0));
        assert!(Bound::Range(1.0, 2.0).holds(1.5));
        assert!(!Bound::Range(1.0, 2.0).holds(2.5));
        assert!(Bound::Min(5.0).holds(5.0));
        assert!(Bound::Max(5.0).holds(5.0));
    }

    #[test]
    fn defaults_fill_in() {
        let minimal = "[suite]\nname = \"m\"\n[[scenario]]\nname = \"s\"\n";
        let suite = SuiteSpec::parse(minimal).unwrap();
        let s = &suite.scenarios[0];
        assert_eq!(s.kind, ScenarioKind::Serving);
        assert_eq!(s.system.backend, "neupims");
        assert_eq!(s.system.replicas, 1);
        let w = s.workload.as_ref().unwrap();
        assert!(matches!(w.arrival, ArrivalProcess::Poisson { .. }));
        assert_eq!(w.tenants.classes().len(), 1);
    }

    #[test]
    fn orchestration_keys_parse_and_validate() {
        let text = r#"
[suite]
name = "orch"

[[scenario]]
name = "autoscaled"
replicas = 8
autoscale = "predictive"
router = "capability"
min-replicas = 2

[[scenario.tenant]]
name = "chat"
priority = 220
slo-ttft-ms = 20.0
input = ["lognormal", 80.0, 0.9]
output = ["fixed", 8]

[[scenario.tenant]]
name = "batch"
priority = 40
input = ["uniform", 256, 512]
output = ["fixed", 8]
"#;
        let suite = SuiteSpec::parse(text).unwrap();
        let s = &suite.scenarios[0];
        assert!(s.system.orchestration_requested());
        assert_eq!(s.system.autoscale.as_deref(), Some("predictive"));
        assert_eq!(s.system.router.as_deref(), Some("capability"));
        assert_eq!(s.system.min_replicas, Some(2));
        let w = s.workload.as_ref().unwrap();
        assert_eq!(w.tenant_policies[0].priority, 220);
        assert_eq!(w.tenant_policies[0].slo_ttft_ms, Some(20.0));
        assert_eq!(w.tenant_policies[0].slo_tpot_ms, None);
        assert_eq!(w.tenant_policies[1].priority, 40);

        // Policy names are validated at parse time, with the inventory
        // in the error.
        let bad = text.replace("\"predictive\"", "\"psychic\"");
        let e = SuiteSpec::parse(&bad).unwrap_err();
        assert!(e.0.contains("unknown autoscale"), "{e}");
        assert!(e.0.contains("static"), "{e}");
        let bad = text.replace("\"capability\"", "\"ouija\"");
        assert!(SuiteSpec::parse(&bad).unwrap_err().0.contains("router"));
        let bad = text.replace("priority = 220", "priority = 999");
        assert!(SuiteSpec::parse(&bad).unwrap_err().0.contains("255"));
    }

    #[test]
    fn expectation_shape_errors() {
        let bad = SUITE.replace("min = 20.0", "metricless = 1.0");
        assert!(SuiteSpec::parse(&bad).is_err());
    }
}
