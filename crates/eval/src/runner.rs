//! Executes suite specs against the simulator and collects metric maps.
//!
//! Each [`ScenarioSpec`] becomes one [`ScenarioRun`]: a flat
//! `metric name -> f64` map the scorer grades golden expectations
//! against. Serving scenarios drive a [`FleetSim`] (a single replica is
//! just a one-element fleet, so every serving metric comes from the same
//! code path); throughput scenarios reuse the warm-batch
//! [`Simulation::throughput`](neupims_core::simulation::Simulation::throughput)
//! methodology behind Figure 12 and Table 3.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

use neupims_core::backend::Backend;
use neupims_core::cluster::ClusterSpec;
use neupims_core::experiments::ExperimentContext;
use neupims_core::fleet::{policy_from_name, FleetOutcome, FleetRequest, FleetSim};
use neupims_core::interconnect::interconnect_from_name;
use neupims_core::orchestrator::{
    autoscale_from_name, router_from_name, OrchRequest, Orchestrator, OrchestratorConfig,
    OrchestratorOutcome, TenantClass,
};
use neupims_core::preempt::{preemption_from_name, SwapConfig};
use neupims_core::scheduler::scheduler_from_name;
use neupims_core::serving::{ServingConfig, ServingSim, SloTargets};
use neupims_core::sharding::ShardedBackend;
use neupims_pim::calibrate;
use neupims_sched::{CostModelKind, TraceMemo};
use neupims_types::NeuPimsConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::{ScenarioKind, ScenarioSpec, SpecError, SuiteSpec, SystemSpec};

/// Any failure while executing a suite.
#[derive(Debug)]
pub enum EvalError {
    /// The spec was malformed or referenced unknown names.
    Spec(SpecError),
    /// The simulator rejected a configuration or run.
    Sim(String),
    /// Report persistence failed.
    Io(std::io::Error),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Spec(e) => write!(f, "{e}"),
            EvalError::Sim(e) => write!(f, "simulation error: {e}"),
            EvalError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SpecError> for EvalError {
    fn from(e: SpecError) -> Self {
        EvalError::Spec(e)
    }
}

impl From<std::io::Error> for EvalError {
    fn from(e: std::io::Error) -> Self {
        EvalError::Io(e)
    }
}

fn sim_err(e: impl fmt::Display) -> EvalError {
    EvalError::Sim(e.to_string())
}

/// Flat metric map of one executed scenario.
pub type Metrics = BTreeMap<String, f64>;

/// Cross-cutting run overrides the CLI threads into a suite run, applied
/// uniformly to every scenario on top of its spec'd configuration.
#[derive(Debug, Clone, Default)]
pub struct EvalOverrides {
    /// Replaces each scenario's workload/sampling seed (the CLI's
    /// `--seed`); two runs with the same override are bit-identical.
    pub seed: Option<u64>,
    /// Worker count for serving scenarios (the CLI's `--jobs`); never
    /// changes results, only wall-clock.
    pub jobs: Option<usize>,
    /// Replaces each scenario's MHA cost model (the CLI's
    /// `--cost-model`), e.g. to trace-price a suite authored for
    /// analytic pricing.
    pub cost_model: Option<CostModelKind>,
    /// Directory of the persistent replay cache (the CLI's
    /// `--memo-cache`): trace-priced scenarios share one on-disk memo,
    /// so a rerun skips every cold replay and reports a 100% disk hit
    /// rate. Only consulted under trace pricing.
    pub memo_cache: Option<PathBuf>,
}

impl EvalOverrides {
    /// The cost model a scenario actually runs with: the override when
    /// set, else the spec's own.
    fn cost_model_for(&self, system: &SystemSpec) -> CostModelKind {
        self.cost_model.unwrap_or(system.cost_model)
    }

    /// A shared replay memo for one trace-priced scenario: disk-backed
    /// when `memo_cache` names a directory, in-memory otherwise. `None`
    /// under analytic pricing (nothing to memoize).
    fn memo_for(&self, kind: CostModelKind) -> Result<Option<TraceMemo>, EvalError> {
        if kind != CostModelKind::TraceDriven {
            return Ok(None);
        }
        match &self.memo_cache {
            Some(dir) => TraceMemo::with_cache_dir(dir).map(Some).map_err(sim_err),
            None => Ok(Some(TraceMemo::new())),
        }
    }
}

/// One executed scenario: its name plus every metric the run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// Scenario name (matches the spec).
    pub name: String,
    /// What was measured ("serving" or "throughput").
    pub kind: &'static str,
    /// Metric name -> observed value.
    pub metrics: Metrics,
}

impl ScenarioRun {
    /// Looks up one metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }
}

/// Executes every scenario of a suite, in file order.
///
/// `seed_override` (the CLI's `--seed`) replaces each scenario's spec'd
/// workload/sampling seed, keeping everything else fixed — two runs with
/// the same override are bit-identical.
///
/// # Errors
///
/// Returns [`EvalError`] when calibration, backend construction, or a
/// simulation run fails. A scenario that *runs* but misses its golden
/// expectations is not an error here — that's the scorer's verdict.
pub fn run_suite(
    suite: &SuiteSpec,
    seed_override: Option<u64>,
) -> Result<Vec<ScenarioRun>, EvalError> {
    run_suite_with_jobs(suite, seed_override, None)
}

/// [`run_suite`] with an explicit worker count for serving scenarios
/// (the CLI's `--jobs`).
///
/// `jobs` bounds how many replica streams each scenario's [`FleetSim`]
/// advances concurrently between dispatch points; `None` keeps the
/// fleet's default ([`std::thread::available_parallelism`]). Results are
/// bit-identical for every worker count — replicas share no state
/// between dispatch barriers — so `--seed` + `--jobs` determinism holds
/// regardless of `N`.
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_suite_with_jobs(
    suite: &SuiteSpec,
    seed_override: Option<u64>,
    jobs: Option<usize>,
) -> Result<Vec<ScenarioRun>, EvalError> {
    run_suite_with_opts(
        suite,
        &EvalOverrides {
            seed: seed_override,
            jobs,
            ..Default::default()
        },
    )
}

/// [`run_suite`] with the full set of [`EvalOverrides`] (seed, worker
/// count, cost model, persistent replay cache).
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_suite_with_opts(
    suite: &SuiteSpec,
    opts: &EvalOverrides,
) -> Result<Vec<ScenarioRun>, EvalError> {
    suite
        .scenarios
        .iter()
        .map(|s| run_scenario_with_opts(s, opts))
        .collect()
}

/// Executes one scenario.
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_scenario(
    spec: &ScenarioSpec,
    seed_override: Option<u64>,
) -> Result<ScenarioRun, EvalError> {
    run_scenario_with_jobs(spec, seed_override, None)
}

/// [`run_scenario`] with an explicit serving worker count (see
/// [`run_suite_with_jobs`]).
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_scenario_with_jobs(
    spec: &ScenarioSpec,
    seed_override: Option<u64>,
    jobs: Option<usize>,
) -> Result<ScenarioRun, EvalError> {
    run_scenario_with_opts(
        spec,
        &EvalOverrides {
            seed: seed_override,
            jobs,
            ..Default::default()
        },
    )
}

/// [`run_scenario`] with the full set of [`EvalOverrides`].
///
/// # Errors
///
/// See [`run_suite`].
pub fn run_scenario_with_opts(
    spec: &ScenarioSpec,
    opts: &EvalOverrides,
) -> Result<ScenarioRun, EvalError> {
    let ctx = context_for(&spec.system)?;
    let seed = opts.seed.unwrap_or(spec.seed);
    let cost_model = opts.cost_model_for(&spec.system);
    let memo = opts.memo_for(cost_model)?;
    let metrics = match spec.kind {
        ScenarioKind::Throughput => run_throughput(&ctx, spec, seed, cost_model, memo.as_ref())?,
        ScenarioKind::Serving => {
            run_serving(&ctx, spec, seed, opts.jobs, cost_model, memo.as_ref())?
        }
    };
    Ok(ScenarioRun {
        name: spec.name.clone(),
        kind: spec.kind.name(),
        metrics,
    })
}

/// Builds the calibrated context, applying the scenario's tight-memory
/// overrides (channel count / per-channel KV capacity) when present.
fn context_for(system: &SystemSpec) -> Result<ExperimentContext, EvalError> {
    if system.channels.is_none() && system.kv_mib_per_channel.is_none() {
        return ExperimentContext::table2().map_err(sim_err);
    }
    let mut cfg = NeuPimsConfig::table2();
    if let Some(channels) = system.channels {
        cfg.mem.channels = channels;
    }
    if let Some(mib) = system.kv_mib_per_channel {
        cfg.mem.capacity_per_channel = mib << 20;
    }
    let cal = calibrate(&cfg).map_err(sim_err)?;
    let base = ExperimentContext::table2().map_err(sim_err)?;
    Ok(ExperimentContext {
        cfg,
        cal,
        seed: base.seed,
        samples: base.samples,
    })
}

/// Wraps `backend` in a [`ShardedBackend`] when the scenario's `tp`/`pp`
/// keys ask for a multi-chip deployment; otherwise returns it unchanged.
fn maybe_sharded(
    system: &SystemSpec,
    backend: Box<dyn Backend>,
) -> Result<Box<dyn Backend>, EvalError> {
    if !system.sharding_requested() {
        return Ok(backend);
    }
    let spec = ClusterSpec::new(system.tp.unwrap_or(1), system.pp.unwrap_or(1));
    let fabric = interconnect_from_name(
        system.interconnect.as_deref().unwrap_or("pcie"),
        system.link_gbps,
    )
    .map_err(sim_err)?;
    Ok(Box::new(
        ShardedBackend::new(backend, spec, fabric).map_err(sim_err)?,
    ))
}

fn run_throughput(
    ctx: &ExperimentContext,
    spec: &ScenarioSpec,
    seed: u64,
    cost_model: CostModelKind,
    memo: Option<&TraceMemo>,
) -> Result<Metrics, EvalError> {
    let system = &spec.system;
    let backend = maybe_sharded(
        system,
        ctx.backend_with_cost(&system.backend, cost_model)
            .map_err(sim_err)?,
    )?;
    let mut builder = ctx
        .simulation()
        .model(system.model.clone())
        .backend(backend)
        .dataset(spec.dataset)
        .batch(spec.batch)
        .seed(seed)
        .samples(spec.samples);
    if let Some(memo) = memo {
        builder = builder.trace_memo(memo.clone());
    }
    if system.sharding_requested() {
        // The sharding wrapper supplies the parallelism: run the full
        // layer stack with device-internal TP 1 underneath it.
        builder = builder.tp(1).layers(system.model.num_layers);
    }
    let sim = builder.build().map_err(sim_err)?;
    let tokens_per_sec = sim.throughput().map_err(sim_err)?;
    let mut metrics = Metrics::new();
    metrics.insert("tokens_per_sec".into(), tokens_per_sec);
    metrics.insert("batch".into(), spec.batch as f64);
    if system.sharding_requested() {
        let devices = system.tp.unwrap_or(1) as u64 * system.pp.unwrap_or(1) as u64;
        metrics.insert("devices".into(), devices as f64);
    }
    Ok(metrics)
}

fn run_serving(
    ctx: &ExperimentContext,
    spec: &ScenarioSpec,
    seed: u64,
    jobs: Option<usize>,
    cost_model: CostModelKind,
    memo: Option<&TraceMemo>,
) -> Result<Metrics, EvalError> {
    let system = &spec.system;
    let workload = spec
        .workload
        .as_ref()
        .expect("serving scenarios carry a workload");
    if system.orchestration_requested() {
        return run_orchestrated(ctx, spec, seed, jobs, cost_model, memo);
    }

    let slo = SloTargets {
        ttft: (system.slo_ttft_ms * 1e6) as u64,
        tpot: system.slo_tpot_ms * 1e6,
    };
    // With `tp`/`pp` each replica is its own sharded chip group: the
    // wrapper supplies the parallelism, so the serving config runs the
    // full layer stack with device-internal TP 1 underneath it.
    let cfg = ServingConfig {
        max_batch: system.max_batch,
        tp: if system.sharding_requested() {
            1
        } else {
            system.model.parallelism.tp
        },
        layers: if system.sharding_requested() {
            system.model.num_layers
        } else {
            system.model.num_layers / system.model.parallelism.pp
        },
        target_completions: 0,
        slo: Some(slo),
    };

    // Comma-separated backend/scheduler lists cycle over the replicas,
    // mirroring the `fleet` CLI command.
    let backend_names: Vec<&str> = system.backend.split(',').map(str::trim).collect();
    let sched_names: Vec<&str> = system.scheduler.split(',').map(str::trim).collect();
    let mut replicas = Vec::new();
    for i in 0..system.replicas {
        let backend = maybe_sharded(
            system,
            ctx.backend_with_cost(backend_names[i % backend_names.len()], cost_model)
                .map_err(sim_err)?,
        )?;
        let scheduler =
            scheduler_from_name(sched_names[i % sched_names.len()], system.chunk_tokens)
                .map_err(sim_err)?;
        replicas.push(
            ServingSim::with_scheduler(backend, system.model.clone(), cfg.clone(), scheduler)
                .with_cost_model(cost_model),
        );
    }
    let mut fleet = FleetSim::new(
        replicas,
        policy_from_name(&system.dispatch).map_err(sim_err)?,
    )
    .map_err(sim_err)?
    .with_preemption(preemption_from_name(&system.preemption).map_err(sim_err)?)
    .with_swap(SwapConfig {
        gb_per_sec: system.swap_gbps,
    });
    if let Some(memo) = memo {
        fleet = fleet.with_shared_trace_memo(memo);
    }
    if let Some(jobs) = jobs {
        fleet = fleet.with_jobs(jobs);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let generated = neupims_workload::ScenarioWorkload {
        arrival: workload.arrival,
        tenants: workload.tenants.clone(),
        requests: workload.requests,
    }
    .generate(&mut rng);
    for (i, req) in generated.iter().enumerate() {
        let output = match workload.output_cap {
            Some(cap) => req.output_len.min(cap).max(1),
            None => req.output_len,
        };
        fleet
            .submit(FleetRequest {
                id: i as u32,
                input_len: req.input_len,
                output_len: output,
                arrival: req.arrival,
            })
            .map_err(sim_err)?;
    }

    // Replay every reachable cold bucket in parallel before serving
    // starts (a no-op on warm or disk-restored memos; never changes
    // results — pinned by the trace parity tests).
    if memo.is_some() {
        fleet.warm_replay();
    }
    let out = fleet.run().map_err(sim_err)?;
    Ok(serving_metrics(&out))
}

/// Executes a serving scenario through the meta-orchestrator: tenant SLO
/// classes, admission control, autoscaling, and capability routing above
/// the same replica construction as the plain fleet path.
fn run_orchestrated(
    ctx: &ExperimentContext,
    spec: &ScenarioSpec,
    seed: u64,
    jobs: Option<usize>,
    cost_model: CostModelKind,
    memo: Option<&TraceMemo>,
) -> Result<Metrics, EvalError> {
    let system = &spec.system;
    let workload = spec
        .workload
        .as_ref()
        .expect("serving scenarios carry a workload");

    let scenario_slo = SloTargets {
        ttft: (system.slo_ttft_ms * 1e6) as u64,
        tpot: system.slo_tpot_ms * 1e6,
    };
    let cfg = ServingConfig {
        max_batch: system.max_batch,
        tp: if system.sharding_requested() {
            1
        } else {
            system.model.parallelism.tp
        },
        layers: if system.sharding_requested() {
            system.model.num_layers
        } else {
            system.model.num_layers / system.model.parallelism.pp
        },
        target_completions: 0,
        slo: Some(scenario_slo),
    };

    // Unlike the fleet path (which layers preemption/swap/memo on after
    // construction), the orchestrator owns its slots from birth, so each
    // slot is fully configured here.
    let backend_names: Vec<&str> = system.backend.split(',').map(str::trim).collect();
    let sched_names: Vec<&str> = system.scheduler.split(',').map(str::trim).collect();
    let mut slots = Vec::new();
    for i in 0..system.replicas {
        let backend = maybe_sharded(
            system,
            ctx.backend_with_cost(backend_names[i % backend_names.len()], cost_model)
                .map_err(sim_err)?,
        )?;
        let scheduler =
            scheduler_from_name(sched_names[i % sched_names.len()], system.chunk_tokens)
                .map_err(sim_err)?;
        let mut slot =
            ServingSim::with_scheduler(backend, system.model.clone(), cfg.clone(), scheduler)
                .with_cost_model(cost_model)
                .with_preemption(preemption_from_name(&system.preemption).map_err(sim_err)?)
                .with_swap(SwapConfig {
                    gb_per_sec: system.swap_gbps,
                });
        if let Some(memo) = memo {
            slot = slot.with_trace_memo(memo);
        }
        slots.push(slot);
    }

    // One orchestrator tenant per workload tenant class, its SLO falling
    // back to the scenario-level targets when the class has no override.
    let classes = workload.tenants.classes();
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    let tenants: Vec<TenantClass> = classes
        .iter()
        .zip(&workload.tenant_policies)
        .map(|(class, policy)| {
            let slo = SloTargets {
                ttft: (policy.slo_ttft_ms.unwrap_or(system.slo_ttft_ms) * 1e6) as u64,
                tpot: policy.slo_tpot_ms.unwrap_or(system.slo_tpot_ms) * 1e6,
            };
            TenantClass::new(
                &class.name,
                slo,
                policy.priority,
                class.weight / total_weight,
            )
        })
        .collect();

    let autoscale_name = system.autoscale.as_deref().unwrap_or("static");
    let router_name = system.router.as_deref().unwrap_or("load");
    // Static scale holds the whole table on (the degenerate fleet-parity
    // configuration); dynamic policies may park down to one slot.
    let default_min = if autoscale_name == "static" {
        system.replicas
    } else {
        1
    };
    let mut orch_cfg = OrchestratorConfig::default_for(system.replicas);
    orch_cfg.min_replicas = system
        .min_replicas
        .unwrap_or(default_min)
        .clamp(1, system.replicas);
    let mut orch = Orchestrator::new(
        slots,
        tenants,
        router_from_name(router_name).map_err(sim_err)?,
        autoscale_from_name(autoscale_name).map_err(sim_err)?,
        orch_cfg,
    )
    .map_err(sim_err)?;
    if let Some(jobs) = jobs {
        orch = orch.with_jobs(jobs);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let generated = neupims_workload::ScenarioWorkload {
        arrival: workload.arrival,
        tenants: workload.tenants.clone(),
        requests: workload.requests,
    }
    .generate(&mut rng);
    for (i, req) in generated.iter().enumerate() {
        let output = match workload.output_cap {
            Some(cap) => req.output_len.min(cap).max(1),
            None => req.output_len,
        };
        orch.submit(OrchRequest {
            req: FleetRequest {
                id: i as u32,
                input_len: req.input_len,
                output_len: output,
                arrival: req.arrival,
            },
            tenant: req.tenant,
        })
        .map_err(sim_err)?;
    }

    let out = orch.run().map_err(sim_err)?;
    Ok(orchestrated_metrics(&out))
}

/// Flattens an orchestrated outcome: every fleet metric, plus the
/// orchestration aggregates and a `tenant_<name>_*` namespace per tenant.
fn orchestrated_metrics(out: &OrchestratorOutcome) -> Metrics {
    let mut m = serving_metrics(&out.fleet);
    m.insert("goodput_per_cost".into(), out.goodput_per_cost());
    m.insert(
        "replica_mcycles_on".into(),
        out.replica_cycles_on as f64 / 1e6,
    );
    m.insert("warmups".into(), out.warmups as f64);
    m.insert("scale_ups".into(), out.scale_ups as f64);
    m.insert("scale_downs".into(), out.scale_downs as f64);
    m.insert("peak_replicas".into(), out.peak_replicas as f64);
    m.insert("shed".into(), out.shed as f64);
    m.insert("deferred".into(), out.deferred as f64);
    for t in &out.tenants {
        let key = |suffix: &str| format!("tenant_{}_{suffix}", t.name);
        m.insert(key("submitted"), t.submitted as f64);
        m.insert(key("admitted"), t.admitted as f64);
        m.insert(key("deferred"), t.deferred as f64);
        m.insert(key("shed"), t.shed as f64);
        m.insert(key("completed"), t.completed as f64);
        m.insert(key("goodput_tokens"), t.goodput_tokens as f64);
        m.insert(key("slo_attainment"), t.slo_attainment());
        m.insert(key("ttft_p99_ms"), t.ttft_percentile(99.0) as f64 / 1e6);
        m.insert(key("tpot_p99_ms"), t.tpot_percentile(99.0) / 1e6);
    }
    m
}

/// Flattens a fleet outcome into the scorer's metric namespace.
fn serving_metrics(out: &FleetOutcome) -> Metrics {
    let mut m = Metrics::new();
    m.insert("submitted".into(), out.submitted as f64);
    m.insert("completed".into(), out.completed as f64);
    m.insert("dropped".into(), out.dropped as f64);
    m.insert("tokens".into(), out.tokens as f64);
    m.insert("tokens_per_sec".into(), out.tokens_per_sec());
    m.insert("goodput".into(), out.goodput());
    m.insert("slo_attainment".into(), out.slo_attainment());
    m.insert("makespan_ms".into(), out.makespan as f64 / 1e6);
    m.insert("preemptions".into(), out.preemptions as f64);
    m.insert("restores".into(), out.restores as f64);
    m.insert(
        "preemption_stall_ms".into(),
        out.preemption_stall_cycles as f64 / 1e6,
    );
    m.insert(
        "restore_overhead_ms".into(),
        out.restore_overhead_cycles as f64 / 1e6,
    );
    m.insert(
        "latency_p50_ms".into(),
        out.latency_percentile(50.0) as f64 / 1e6,
    );
    m.insert(
        "latency_p99_ms".into(),
        out.latency_percentile(99.0) as f64 / 1e6,
    );
    m.insert("ttft_p50_ms".into(), out.ttft_percentile(50.0) as f64 / 1e6);
    m.insert("ttft_p99_ms".into(), out.ttft_percentile(99.0) as f64 / 1e6);
    m.insert("tpot_p50_ms".into(), out.tpot_percentile(50.0) / 1e6);
    m.insert("tpot_p99_ms".into(), out.tpot_percentile(99.0) / 1e6);
    m.insert("overlap_efficiency".into(), out.overlap_efficiency());
    let peak_kv = out
        .replicas
        .iter()
        .map(|r| r.peak_kv_utilization)
        .fold(0.0, f64::max);
    m.insert("peak_kv_utilization".into(), peak_kv);
    if let Some(trace) = &out.pim_trace {
        m.insert("row_buffer_hit_rate".into(), trace.stats.hit_rate());
        m.insert("memo_hit_rate".into(), trace.memo_hit_rate());
        m.insert("disk_hit_rate".into(), trace.disk_hit_rate());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SuiteSpec;

    const TINY: &str = r#"
[suite]
name = "tiny"

[[scenario]]
name = "serve"
requests = 6
seed = 5
max-batch = 8
rate = 4.0
output-cap = 24

[[scenario]]
name = "thr"
kind = "throughput"
batch = 32
samples = 1
"#;

    #[test]
    fn serving_and_throughput_scenarios_run() {
        let suite = SuiteSpec::parse(TINY).unwrap();
        let runs = run_suite(&suite, None).unwrap();
        assert_eq!(runs.len(), 2);
        let serve = &runs[0];
        assert_eq!(serve.kind, "serving");
        assert_eq!(serve.metric("submitted"), Some(6.0));
        assert!(serve.metric("tokens_per_sec").unwrap() > 0.0);
        assert!(serve.metric("completed").unwrap() > 0.0);
        let thr = &runs[1];
        assert_eq!(thr.kind, "throughput");
        assert!(thr.metric("tokens_per_sec").unwrap() > 0.0);
    }

    #[test]
    fn seed_override_is_deterministic() {
        let suite = SuiteSpec::parse(TINY).unwrap();
        let a = run_suite(&suite, Some(99)).unwrap();
        let b = run_suite(&suite, Some(99)).unwrap();
        assert_eq!(a, b);
        let c = run_suite(&suite, Some(100)).unwrap();
        // A different seed shifts arrivals and lengths; at least one
        // serving metric should move.
        assert_ne!(a[0].metrics, c[0].metrics);
    }

    #[test]
    fn jobs_count_never_changes_results() {
        let suite = SuiteSpec::parse(TINY).unwrap();
        let serial = run_suite_with_jobs(&suite, Some(42), Some(1)).unwrap();
        for jobs in [2, 4, 16] {
            let parallel = run_suite_with_jobs(&suite, Some(42), Some(jobs)).unwrap();
            assert_eq!(serial, parallel, "--jobs {jobs} changed eval results");
        }
    }

    /// The cost-model override trace-prices a suite authored for
    /// analytic pricing, and a `--memo-cache` rerun serves every first
    /// bucket touch from disk (the CI smoke job greps for the resulting
    /// 100% disk hit rate).
    #[test]
    fn memo_cache_rerun_reports_full_disk_hits() {
        let dir = std::env::temp_dir().join(format!("neupims-eval-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = |cache: bool| EvalOverrides {
            seed: Some(7),
            cost_model: Some(CostModelKind::TraceDriven),
            memo_cache: cache.then(|| dir.clone()),
            ..Default::default()
        };
        let suite = SuiteSpec::parse(TINY).unwrap();

        let cold = run_suite_with_opts(&suite, &opts(true)).unwrap();
        let serve = &cold[0];
        assert!(
            serve.metric("memo_hit_rate").is_some(),
            "trace override must surface the replay-memo metrics"
        );
        assert_eq!(
            serve.metric("disk_hit_rate"),
            Some(0.0),
            "first run is cold"
        );

        let warm = run_suite_with_opts(&suite, &opts(true)).unwrap();
        assert_eq!(
            warm[0].metric("disk_hit_rate"),
            Some(1.0),
            "a rerun over the populated cache must never replay"
        );

        // Persistence is pure performance: every *serving* metric is
        // bit-identical to an uncached trace-priced run. The memo
        // counter metrics legitimately differ (a disk-restored memo
        // replays nothing and only pays disk hits for buckets serving
        // actually touches, while a cold warmup replays the whole
        // reachable lattice), so they are excluded from the comparison.
        let strip = |m: &Metrics| {
            let mut m = m.clone();
            m.remove("disk_hit_rate");
            m.remove("memo_hit_rate");
            m.remove("row_buffer_hit_rate");
            m
        };
        let uncached = run_suite_with_opts(&suite, &opts(false)).unwrap();
        for (a, b) in warm.iter().zip(&uncached) {
            assert_eq!(strip(&a.metrics), strip(&b.metrics), "{}", a.name);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An orchestrated scenario surfaces the goodput-per-cost and
    /// per-tenant namespaces, conserves admission labels, and stays
    /// `--jobs`-deterministic like every other serving run.
    #[test]
    fn orchestrated_scenarios_surface_tenant_metrics() {
        let text = r#"
[suite]
name = "orch-tiny"

[[scenario]]
name = "autoscaled"
requests = 12
seed = 4
replicas = 3
backend = "gpu"
max-batch = 8
autoscale = "reactive"
router = "capability"
output-cap = 8
rate = 6.0

[[scenario.tenant]]
name = "chat"
priority = 220
input = ["lognormal", 60.0, 0.5]
output = ["fixed", 8]

[[scenario.tenant]]
name = "batch"
priority = 40
input = ["uniform", 256, 512]
output = ["fixed", 8]
"#;
        let suite = SuiteSpec::parse(text).unwrap();
        let runs = run_suite(&suite, None).unwrap();
        let run = &runs[0];
        assert!(run.metric("goodput_per_cost").unwrap() >= 0.0);
        assert!(run.metric("replica_mcycles_on").unwrap() > 0.0);
        assert!(run.metric("peak_replicas").unwrap() <= 3.0);
        for tenant in ["chat", "batch"] {
            let get = |s: &str| run.metric(&format!("tenant_{tenant}_{s}")).unwrap();
            assert_eq!(
                get("admitted") + get("deferred") + get("shed"),
                get("submitted"),
                "conservation broke for {tenant}"
            );
        }
        assert_eq!(
            run.metric("tenant_chat_submitted").unwrap()
                + run.metric("tenant_batch_submitted").unwrap(),
            12.0
        );
        let serial = run_suite_with_jobs(&suite, Some(8), Some(1)).unwrap();
        let parallel = run_suite_with_jobs(&suite, Some(8), Some(4)).unwrap();
        assert_eq!(serial, parallel, "--jobs changed orchestrated results");
    }

    #[test]
    fn memory_overrides_shrink_the_kv_cache() {
        let text = r#"
[suite]
name = "pressure"

[[scenario]]
name = "tight"
requests = 8
seed = 3
max-batch = 8
channels = 4
kv-mib-per-channel = 48
output-cap = 32
rate = 6.0
"#;
        let suite = SuiteSpec::parse(text).unwrap();
        let runs = run_suite(&suite, None).unwrap();
        assert!(runs[0].metric("peak_kv_utilization").unwrap() > 0.0);
    }
}
