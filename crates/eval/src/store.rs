//! Report persistence: `reports/<suite>/<rev>.json` plus a `latest.json`
//! alias, so successive runs of the same suite accumulate a perf/quality
//! trajectory keyed by source revision.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::report::EvalReport;

/// The revision key a stored report is filed under.
///
/// Resolution order: the `NEUPIMS_EVAL_REV` environment variable (so CI
/// and tests can pin a key), then `git rev-parse --short HEAD`, then the
/// literal `"worktree"` when neither is available. The result is
/// sanitized to `[A-Za-z0-9._-]` so it is always a safe file stem.
pub fn resolve_rev() -> String {
    let raw = std::env::var("NEUPIMS_EVAL_REV")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .or_else(git_short_rev)
        .unwrap_or_else(|| "worktree".to_owned());
    let safe: String = raw
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if safe.is_empty() {
        "worktree".to_owned()
    } else {
        safe
    }
}

fn git_short_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_owned();
    if rev.is_empty() {
        None
    } else {
        Some(rev)
    }
}

/// The current unix time in seconds (0 if the clock is before the epoch).
pub fn unix_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Writes `root/<suite>/<rev>.json` and `root/<suite>/latest.json`,
/// creating directories as needed. Returns both paths (rev-keyed first).
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn store_report(root: &Path, report: &EvalReport) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = root.join(&report.suite);
    std::fs::create_dir_all(&dir)?;
    let json = report.to_json();
    let keyed = dir.join(format!("{}.json", report.rev));
    std::fs::write(&keyed, &json)?;
    let latest = dir.join("latest.json");
    std::fs::write(&latest, &json)?;
    Ok((keyed, latest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("neupims-eval-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stores_keyed_and_latest() {
        let dir = tmpdir("keyed");
        let report = EvalReport {
            suite: "smoke".into(),
            description: String::new(),
            rev: "abc1234".into(),
            unix_seconds: 0,
            seed_override: None,
            scenarios: Vec::new(),
            checks: Vec::new(),
        };
        let (keyed, latest) = store_report(&dir, &report).unwrap();
        assert!(keyed.ends_with("smoke/abc1234.json"));
        assert!(latest.ends_with("smoke/latest.json"));
        let a = std::fs::read_to_string(&keyed).unwrap();
        let b = std::fs::read_to_string(&latest).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"suite\": \"smoke\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rev_is_sanitized() {
        std::env::set_var("NEUPIMS_EVAL_REV", "feat/evil rev!");
        let rev = resolve_rev();
        std::env::remove_var("NEUPIMS_EVAL_REV");
        assert_eq!(rev, "feat-evil-rev-");
    }
}
