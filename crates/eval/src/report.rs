//! The structured eval report: JSON serialization and the stdout table.

use crate::json::Json;
use crate::runner::ScenarioRun;
use crate::scorer::{verdict, CheckResult, CheckStatus};

/// A complete eval run: suite identity, every scenario's metrics, and
/// every graded check. This is what the store persists and CI consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Suite name.
    pub suite: String,
    /// Suite description.
    pub description: String,
    /// Source revision the run was taken at (short git hash, or an
    /// override / fallback — see [`crate::store::resolve_rev`]).
    pub rev: String,
    /// Unix timestamp of the run, seconds.
    pub unix_seconds: u64,
    /// Workload seed override, when the CLI forced one.
    pub seed_override: Option<u64>,
    /// Executed scenarios, in suite order.
    pub scenarios: Vec<ScenarioRun>,
    /// Graded checks, in suite order (expects first, then compares).
    pub checks: Vec<CheckResult>,
}

impl EvalReport {
    /// The suite verdict: the worst check status.
    pub fn verdict(&self) -> CheckStatus {
        verdict(&self.checks)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&s.name)),
                    ("kind".into(), Json::str(s.kind)),
                    (
                        "metrics".into(),
                        Json::Obj(
                            s.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let checks = self
            .checks
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("scenario".into(), Json::str(&c.scenario)),
                    ("metric".into(), Json::str(&c.metric)),
                    (
                        "observed".into(),
                        c.observed.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("bound".into(), Json::str(c.bound.describe())),
                    ("severity".into(), Json::str(c.severity.name())),
                    ("status".into(), Json::str(c.status.name())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("suite".into(), Json::str(&self.suite)),
            ("description".into(), Json::str(&self.description)),
            ("rev".into(), Json::str(&self.rev)),
            ("unix_seconds".into(), Json::int(self.unix_seconds)),
            (
                "seed_override".into(),
                self.seed_override.map(Json::int).unwrap_or(Json::Null),
            ),
            ("verdict".into(), Json::str(self.verdict().name())),
            ("scenarios".into(), Json::Arr(scenarios)),
            ("checks".into(), Json::Arr(checks)),
        ])
        .pretty()
    }

    /// Renders the human-readable result tables (GitHub-flavored
    /// markdown, matching the other CLI commands).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "\n## Eval — suite {} @ {} ({})\n",
            self.suite, self.rev, self.description
        );
        for s in &self.scenarios {
            let _ = writeln!(out, "### {} ({})\n", s.name, s.kind);
            let _ = writeln!(out, "| metric | value |");
            let _ = writeln!(out, "|---|---:|");
            for (k, v) in &s.metrics {
                let _ = writeln!(out, "| {k} | {v:.4} |");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "### Checks\n");
        let _ = writeln!(out, "| scenario | metric | observed | expected | status |");
        let _ = writeln!(out, "|---|---|---:|---|---|");
        for c in &self.checks {
            let observed = match c.observed {
                Some(v) => format!("{v:.4}"),
                None => "(missing)".to_owned(),
            };
            let status = match c.status {
                CheckStatus::Pass => "pass",
                CheckStatus::Warn => "WARN",
                CheckStatus::Fail => "FAIL",
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                c.scenario,
                c.metric,
                observed,
                c.bound.describe(),
                status
            );
        }
        let (pass, warn, fail) = self.counts();
        let _ = writeln!(
            out,
            "\nverdict: {} ({pass} pass, {warn} warn, {fail} fail)",
            self.verdict().name()
        );
        out
    }

    /// (pass, warn, fail) counts over the checks.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut pass = 0;
        let mut warn = 0;
        let mut fail = 0;
        for c in &self.checks {
            match c.status {
                CheckStatus::Pass => pass += 1,
                CheckStatus::Warn => warn += 1,
                CheckStatus::Fail => fail += 1,
            }
        }
        (pass, warn, fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Metrics;
    use crate::spec::{Bound, Severity};

    fn report() -> EvalReport {
        let mut metrics = Metrics::new();
        metrics.insert("tokens_per_sec".into(), 1234.5);
        EvalReport {
            suite: "smoke".into(),
            description: "fast sanity".into(),
            rev: "abc1234".into(),
            unix_seconds: 1_754_000_000,
            seed_override: Some(7),
            scenarios: vec![ScenarioRun {
                name: "thr".into(),
                kind: "throughput",
                metrics,
            }],
            checks: vec![CheckResult {
                scenario: "thr".into(),
                metric: "tokens_per_sec".into(),
                observed: Some(1234.5),
                bound: Bound::Min(1000.0),
                severity: Severity::Fail,
                status: CheckStatus::Pass,
            }],
        }
    }

    #[test]
    fn json_has_the_full_shape() {
        let j = report().to_json();
        assert!(j.contains("\"suite\": \"smoke\""));
        assert!(j.contains("\"rev\": \"abc1234\""));
        assert!(j.contains("\"seed_override\": 7"));
        assert!(j.contains("\"verdict\": \"pass\""));
        assert!(j.contains("\"tokens_per_sec\": 1234.5"));
        assert!(j.contains("\"status\": \"pass\""));
    }

    #[test]
    fn render_flags_failures() {
        let mut r = report();
        r.checks[0].status = CheckStatus::Fail;
        let text = r.render();
        assert!(text.contains("| FAIL |"));
        assert!(text.contains("verdict: fail"));
    }
}
