//! A minimal TOML reader for scenario specs.
//!
//! The build environment vendors all third-party crates ([`shims/`] are
//! no-op stand-ins), so the eval harness parses its own specs. This is a
//! deliberate subset of TOML 1.0 — exactly the grammar the suite files
//! under `scenarios/` use:
//!
//! * `key = value` pairs with bare or double-quoted keys;
//! * values: basic strings, integers, floats, booleans, and single-line
//!   arrays of those;
//! * `[table]` and dotted `[table.subtable]` headers;
//! * `[[array-of-tables]]` headers (dotted forms allowed, where every
//!   prefix segment names a table);
//! * `#` comments and blank lines.
//!
//! Unsupported TOML (multi-line strings, inline tables, dates, dotted
//! *keys*) is rejected with a line-numbered [`TomlError`] rather than
//! silently misread.
//!
//! [`shims/`]: https://github.com/neupims-sim/neupims-sim

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<Value>),
    /// A table (`[header]`, `[[header]]` element, or the document root).
    Table(Table),
}

/// A TOML table: ordered key → value map.
pub type Table = BTreeMap<String, Value>;

impl Value {
    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float (integers coerce), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integer `>= 0`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A short type label for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// Returns a line-numbered [`TomlError`] on any syntax outside the
/// supported subset (see the module docs).
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root = Table::new();
    // Path of the table the next `key = value` lands in; empty = root. An
    // array-of-tables segment always resolves to its *last* element.
    let mut current: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(header) = header.strip_suffix("]]") else {
                return err(line_no, "unterminated [[header]]");
            };
            current = parse_header_path(header, line_no)?;
            push_array_element(&mut root, &current, line_no)?;
        } else if let Some(header) = line.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return err(line_no, "unterminated [header]");
            };
            current = parse_header_path(header, line_no)?;
            // Materialize the table so empty sections still exist.
            resolve_table(&mut root, &current, line_no)?;
        } else {
            let Some(eq) = find_unquoted(line, '=') else {
                return err(line_no, format!("expected `key = value`, got {line:?}"));
            };
            let key = parse_key(line[..eq].trim(), line_no)?;
            let value = parse_value(line[eq + 1..].trim(), line_no)?;
            let table = resolve_table(&mut root, &current, line_no)?;
            if table.insert(key.clone(), value).is_some() {
                return err(line_no, format!("duplicate key {key:?}"));
            }
        }
    }
    Ok(root)
}

/// Strips a `#` comment, respecting basic strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Byte position of the first `target` outside double quotes.
fn find_unquoted(line: &str, target: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == target {
            return Some(i);
        }
    }
    None
}

fn parse_key(raw: &str, line: usize) -> Result<String, TomlError> {
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return err(line, "unterminated quoted key");
        };
        return Ok(inner.to_owned());
    }
    if raw.is_empty()
        || !raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return err(line, format!("invalid bare key {raw:?}"));
    }
    Ok(raw.to_owned())
}

fn parse_header_path(header: &str, line: usize) -> Result<Vec<String>, TomlError> {
    header
        .split('.')
        .map(|seg| parse_key(seg.trim(), line))
        .collect()
}

/// Walks (creating as needed) to the table at `path`. An
/// array-of-tables segment resolves to its *last* element, so headers and
/// keys written after `[[x]]` land in the element that header opened.
fn resolve_table<'a>(
    root: &'a mut Table,
    path: &[String],
    line: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut table = root;
    for seg in path {
        let entry = table
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        table = match entry {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return err(line, format!("{seg:?} is not an array of tables")),
            },
            other => {
                return err(
                    line,
                    format!("{seg:?} already holds a {}", other.type_name()),
                )
            }
        };
    }
    Ok(table)
}

/// Appends a fresh element to the array-of-tables at `path`.
fn push_array_element(root: &mut Table, path: &[String], line: usize) -> Result<(), TomlError> {
    let (tail, prefix) = path.split_last().expect("header paths are non-empty");
    let parent = resolve_table(root, prefix, line)?;
    let entry = parent
        .entry(tail.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(items) => {
            items.push(Value::Table(Table::new()));
            Ok(())
        }
        other => err(
            line,
            format!("[[{tail}]] conflicts with existing {}", other.type_name()),
        ),
    }
}

fn parse_value(raw: &str, line: usize) -> Result<Value, TomlError> {
    if raw.is_empty() {
        return err(line, "missing value");
    }
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return err(line, "unterminated string");
        };
        return Ok(Value::Str(unescape(inner, line)?));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return err(line, "unterminated array (arrays must be single-line)");
        };
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, line)?);
            }
        }
        return Ok(Value::Array(items));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let plain = raw.replace('_', "");
    if let Ok(i) = plain.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = plain.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    err(line, format!("unrecognized value {raw:?}"))
}

/// Splits an array body on commas outside strings and nested brackets.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' if !in_str && depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

fn unescape(s: &str, line: usize) -> Result<String, TomlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return err(line, format!("unsupported escape \\{other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_spec_shape() {
        let doc = r#"
# a suite
[suite]
name = "smoke"          # trailing comment
description = "fast checks"

[[scenario]]
name = "serve-1"
requests = 48
rate = 2.5
quick = true
batches = [64, 128, 256]

[scenario.arrival]
process = "bursty"
burst-size = 8

[[scenario.expect]]
metric = "tokens_per_sec"
min = 1_000.5

[[scenario]]
name = "serve-2"
"#;
        let t = parse(doc).unwrap();
        let suite = t["suite"].as_table().unwrap();
        assert_eq!(suite["name"].as_str(), Some("smoke"));
        let scenarios = t["scenario"].as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        let s0 = scenarios[0].as_table().unwrap();
        assert_eq!(s0["requests"].as_u64(), Some(48));
        assert_eq!(s0["rate"].as_f64(), Some(2.5));
        assert_eq!(s0["quick"].as_bool(), Some(true));
        assert_eq!(s0["batches"].as_array().unwrap().len(), 3);
        let arrival = s0["arrival"].as_table().unwrap();
        assert_eq!(arrival["process"].as_str(), Some("bursty"));
        assert_eq!(arrival["burst-size"].as_u64(), Some(8));
        let expects = s0["expect"].as_array().unwrap();
        assert_eq!(expects.len(), 1);
        assert_eq!(expects[0].as_table().unwrap()["min"].as_f64(), Some(1000.5));
        assert_eq!(
            scenarios[1].as_table().unwrap()["name"].as_str(),
            Some("serve-2")
        );
    }

    #[test]
    fn dotted_headers_nest() {
        let t = parse("[a.b]\nx = 1\n[a.c]\ny = 2.0\n").unwrap();
        let a = t["a"].as_table().unwrap();
        assert_eq!(a["b"].as_table().unwrap()["x"].as_u64(), Some(1));
        assert_eq!(a["c"].as_table().unwrap()["y"].as_f64(), Some(2.0));
    }

    #[test]
    fn strings_keep_hashes_and_escapes() {
        let t = parse(r#"k = "a # not a comment \"q\"""#).unwrap();
        assert_eq!(t["k"].as_str(), Some(r#"a # not a comment "q""#));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("x = 1\nx = 2").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        let e = parse("x = @nope").unwrap_err();
        assert!(e.message.contains("unrecognized"), "{e}");
    }

    #[test]
    fn negative_and_underscored_numbers() {
        let t = parse("a = -3\nb = 1_000_000\nc = -0.5").unwrap();
        assert_eq!(t["a"], Value::Int(-3));
        assert_eq!(t["b"].as_u64(), Some(1_000_000));
        assert_eq!(t["c"].as_f64(), Some(-0.5));
        assert_eq!(t["a"].as_u64(), None, "negative is not u64");
    }

    #[test]
    fn array_of_tables_under_a_table() {
        let doc = "[[scenario]]\nname = \"s\"\n[[scenario.expect]]\nmetric = \"m\"\n[[scenario.expect]]\nmetric = \"n\"\n";
        let t = parse(doc).unwrap();
        let s0 = t["scenario"].as_array().unwrap()[0].as_table().unwrap();
        let expects = s0["expect"].as_array().unwrap();
        assert_eq!(expects.len(), 2);
        assert_eq!(expects[1].as_table().unwrap()["metric"].as_str(), Some("n"));
    }
}
