//! A minimal JSON document builder and pretty-printer.
//!
//! The workspace's `serde` is an offline no-op shim (marker traits only),
//! so the eval harness emits its `EvalReport` JSON through this tiny
//! value tree instead. Output is deterministic: object keys keep
//! insertion order, floats use Rust's shortest round-trip formatting,
//! and non-finite floats become `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values print as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| < 2^53).
    pub fn int(n: u64) -> Self {
        Json::Num(n as f64)
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction; everything
                    // else uses the shortest representation that round-trips.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("smoke")),
            ("ok".into(), Json::Bool(true)),
            ("count".into(), Json::int(3)),
            ("ratio".into(), Json::Num(1.625)),
            ("nan".into(), Json::Num(f64::NAN)),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        assert!(text.contains("\"name\": \"smoke\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 1.625"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integral_floats_have_no_fraction() {
        assert_eq!(Json::Num(42.0).pretty(), "42\n");
        assert_eq!(Json::Num(-0.5).pretty(), "-0.5\n");
    }
}
