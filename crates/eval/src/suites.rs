//! Suite discovery: the shipped suites (embedded at compile time from
//! `scenarios/`) plus on-disk spec files.

use crate::runner::EvalError;
use crate::spec::{SpecError, SuiteSpec};

/// Names of the shipped suites, in documentation order.
pub const SUITE_NAMES: &[&str] = &[
    "smoke",
    "fig12",
    "table3",
    "pressure",
    "scaling",
    "orchestrator",
];

/// The embedded TOML text of a shipped suite, if `name` is one.
pub fn builtin_suite(name: &str) -> Option<&'static str> {
    match name {
        "smoke" => Some(include_str!("../../../scenarios/smoke.toml")),
        "fig12" => Some(include_str!("../../../scenarios/fig12.toml")),
        "table3" => Some(include_str!("../../../scenarios/table3.toml")),
        "pressure" => Some(include_str!("../../../scenarios/pressure.toml")),
        "scaling" => Some(include_str!("../../../scenarios/scaling.toml")),
        "orchestrator" => Some(include_str!("../../../scenarios/orchestrator.toml")),
        _ => None,
    }
}

/// One-line description of a shipped suite (parsed out of its spec).
pub fn builtin_description(name: &str) -> Option<String> {
    let text = builtin_suite(name)?;
    SuiteSpec::parse(text).ok().map(|s| s.description)
}

/// Loads a suite by name or path.
///
/// Resolution order:
/// 1. a path to a `.toml` file (absolute or relative) — so authored
///    suites run without a rebuild and edited copies of the shipped
///    suites take effect immediately;
/// 2. `scenarios/<name>.toml` under the current directory;
/// 3. the embedded copy of a shipped suite (so the binary works from any
///    working directory).
///
/// # Errors
///
/// Returns [`EvalError`] when nothing resolves or the spec fails to
/// parse.
pub fn load_suite(name: &str) -> Result<SuiteSpec, EvalError> {
    let candidates = [
        std::path::PathBuf::from(name),
        std::path::PathBuf::from("scenarios").join(format!("{name}.toml")),
    ];
    for path in &candidates {
        if path.extension().is_some_and(|e| e == "toml") && path.is_file() {
            let text = std::fs::read_to_string(path)?;
            return SuiteSpec::parse(&text)
                .map_err(|e| EvalError::Spec(SpecError(format!("{}: {}", path.display(), e.0))));
        }
    }
    if let Some(text) = builtin_suite(name) {
        return SuiteSpec::parse(text)
            .map_err(|e| EvalError::Spec(SpecError(format!("builtin {name}: {}", e.0))));
    }
    Err(EvalError::Spec(SpecError(format!(
        "unknown suite {name:?}: expected one of [{}], or a path to a .toml spec",
        SUITE_NAMES.join(", ")
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_suite_parses() {
        for name in SUITE_NAMES {
            let text = builtin_suite(name).unwrap();
            let suite = SuiteSpec::parse(text)
                .unwrap_or_else(|e| panic!("shipped suite {name} is invalid: {e}"));
            assert_eq!(&suite.name, name, "suite name must match its file stem");
            assert!(
                !suite.description.is_empty(),
                "shipped suite {name} needs a description"
            );
            assert!(
                suite.scenarios.iter().any(|s| !s.expects.is_empty()) || !suite.compares.is_empty(),
                "shipped suite {name} has no golden checks at all"
            );
        }
    }

    #[test]
    fn unknown_names_error_with_the_inventory() {
        let e = load_suite("nope").unwrap_err();
        assert!(e.to_string().contains("smoke"), "{e}");
    }
}
