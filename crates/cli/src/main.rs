//! Thin binary wrapper; the CLI lives in the `neupims_cli` library so the
//! workspace root can expose the same `neupims` bin for `cargo run`.

fn main() -> std::process::ExitCode {
    neupims_cli::run_cli()
}
