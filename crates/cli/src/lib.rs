//! `neupims` — experiment driver reproducing every table and figure of the
//! NeuPIMs paper (ASPLOS'24), plus backend-generic sweeps and serving.
//!
//! ```text
//! neupims <command> [suite] [--samples N] [--quick] [--backend NAME]
//!                   [--model NAME] [--dataset NAME] [--batch N]
//!                   [--requests N] [--max-batch N]
//!                   [--replicas N] [--policy NAME] [--rate R] [--seed N]
//!                   [--jobs N]
//!                   [--scheduler NAME] [--chunk-tokens N]
//!                   [--preemption NAME] [--swap-gbps GB]
//!                   [--cost-model NAME] [--tolerance F]
//!                   [--memo-cache DIR]
//!                   [--slo-ttft-ms MS] [--slo-tpot-ms MS]
//!                   [--tp N] [--pp N] [--interconnect NAME]
//!                   [--link-gbps GB]
//!                   [--list] [--reports-dir DIR]
//!
//! commands:
//!   sweep       throughput sweep of one backend across batch sizes
//!   serve       serving simulation (streaming arrivals) on one backend
//!   fleet       SLO-aware multi-replica fleet serving behind a dispatcher
//!   eval        run a golden-expectation suite (eval <suite>, eval --list)
//!   calibrate   print the cycle-model calibration constants
//!   drift       analytic-vs-trace MHA cost model calibration drift
//!               (exits non-zero when any point exceeds --tolerance)
//!   fig4        roofline / arithmetic-intensity points (Figure 4)
//!   fig5        GPU utilization for four LLMs (Figure 5)
//!   fig6        naive NPU+PIM per-stage utilization (Figure 6)
//!   fig12       throughput: 4 systems x datasets x batch sizes x models
//!   fig13       ablation: DRB / GMLBP / SBI (Figure 13)
//!   fig14       (TP, PP) parallelism scaling (Figure 14)
//!   fig15       speedup over TransPIM (Figure 15)
//!   table4      resource utilization (Table 4)
//!   table5      power and energy (Table 5)
//!   area        dual-row-buffer area overhead (Section 8.2)
//!   all         every figure/table above, in order
//!
//! backends (for --backend): gpu, npu-only, naive, neupims, transpim,
//!   neupims-drb, neupims-drb-gmlbp, neupims-drb-gmlbp-sbi
//!   (fleet accepts a comma-separated list, cycled over the replicas)
//! models (for --model): gpt3-7b, gpt3-13b, gpt3-30b, gpt3-175b
//! datasets (for --dataset): sharegpt, alpaca
//! policies (for --policy): round-robin, jsq, kv-aware
//! schedulers (for --scheduler): lump, chunked, interleaved
//!   (fleet accepts a comma-separated list, cycled over the replicas);
//!   --chunk-tokens sets the per-iteration prefill budget of the chunked
//!   schedulers (default 256)
//! preemption policies (for --preemption, on serve/fleet): drop (defer or
//!   shed on KV pressure, default), recompute (evict newest admissions,
//!   re-pay prefill at restore), swap (evict coldest, restore over a
//!   --swap-gbps GB/s PCIe-style link, default 32)
//! cost models (for --cost-model, on sweep/serve/fleet): analytic (the
//!   Algorithm 1 closed form, default) or trace (replay the real GEMV
//!   command streams through the cycle-level DRAM model, memoized per
//!   context-length bucket); `drift --tolerance F` reports where the two
//!   disagree by more than F (relative, default 0.10)
//! --memo-cache DIR (on serve/fleet/eval, with --cost-model trace)
//!   persists the replay memo to DIR: a rerun over the same hardware
//!   config loads every priced bucket from disk instead of replaying it
//!   (corrupt or version-mismatched entries are ignored with a warning);
//!   `fleet` additionally shares one memo across all replicas and
//!   pre-replays cold buckets in parallel before serving starts
//! multi-chip sharding (on sweep/serve/fleet): --tp N splits attention
//! heads and FFN columns across N chips, --pp N pipelines the decoder
//! stack over N stages; the per-layer collectives and stage hops are
//! priced by --interconnect (pcie | unified | noc | ideal, default
//! pcie) whose per-link bandwidth --link-gbps GB overrides. With
//! neither --tp nor --pp the backend runs unsharded, exactly as before;
//! fleet gives every replica its own sharded chip group.
//! --rate is in requests per million cycles (= kilo-requests/s at 1 GHz)
//! and drives both `serve` and `fleet` arrivals; --slo-ttft-ms /
//! --slo-tpot-ms set the latency targets their SLO-attainment and
//! goodput columns are measured against.
//! --jobs caps how many replica streams `fleet` and `eval` advance in
//! parallel between dispatch points (default: available parallelism).
//! Replicas share no state between dispatch barriers, so --jobs only
//! changes wall-clock: the same --seed yields bit-identical results for
//! any N (pinned by tests).
//! --seed pins the workload RNG of `serve`, `fleet`, and `eval`: two runs
//! with the same seed (and flags) submit identical requests. Without it,
//! serve/fleet fall back to fixed default seeds (so changing --requests
//! never reshuffles the shared workload prefix) and eval suites use
//! their spec'd per-scenario seeds.
//! Any of --tenants/--autoscale/--router/--min-replicas routes `fleet`
//! through the capability-aware meta-orchestrator (docs/ORCHESTRATOR.md):
//! --tenants takes name:weight:priority[:ttft_ms:tpot_ms] entries
//! (priority >= 100 bypasses admission control), --autoscale picks the
//! replica scaler (static | reactive | predictive; scalers pay each
//! spin-up's warmup cycles and park idle replicas down to
//! --min-replicas), and --router picks dispatch scoring (load |
//! round-robin | capability). The report adds per-tenant SLO attainment
//! and the goodput-per-cost bottom line (tokens from SLO-attaining
//! requests per replica-Mcycle of committed capacity).
//! eval suites: smoke (CI default), fig12, table3, pressure, scaling,
//! orchestrator — or a path
//! to a .toml spec (see docs/EVAL.md); reports are stored under
//! --reports-dir (default `reports/`) keyed by suite + git revision, and
//! the command exits non-zero when any fail-severity golden check is
//! violated.
//! ```

use std::process::ExitCode;

/// Default workload seed of `serve` when `--seed` is absent. A fixed
/// constant on purpose: the default workload must be a function of the
/// seed alone, so `--requests 100` submits a prefix of `--requests 200`
/// (the old `seed ^ requests` derivation reshuffled everything whenever
/// the count changed; pinned by `tests/regression_seed_plumbing.rs`).
pub const DEFAULT_SERVE_SEED: u64 = 0x5EED;

/// Default workload seed of `fleet` when `--seed` is absent (see
/// [`DEFAULT_SERVE_SEED`] for why this must not depend on `--requests`).
pub const DEFAULT_FLEET_SEED: u64 = 0xF1EE7;

use neupims_core::backend::Backend;
use neupims_core::cluster::ClusterSpec;
use neupims_core::experiments::{
    area_overhead, fig12_throughput, fig13_ablation, fig14_parallelism, fig15_transpim,
    fig4_roofline, fig5_gpu_util, fig6_layer_util, table4_utilization, table5_power,
    ExperimentContext,
};
use neupims_core::fleet::{policy_from_name, FleetRequest, FleetSim, POLICY_NAMES};
use neupims_core::interconnect::{interconnect_from_name, INTERCONNECT_NAMES};
use neupims_core::orchestrator::{
    autoscale_from_name, router_from_name, OrchRequest, Orchestrator, OrchestratorConfig,
    TenantClass, AUTOSCALE_NAMES, ROUTER_NAMES,
};
use neupims_core::preempt::{preemption_from_name, SwapConfig, PREEMPTION_NAMES};
use neupims_core::scheduler::{scheduler_from_name, SCHEDULER_NAMES};
use neupims_core::serving::{ServingConfig, ServingSim, SloTargets};
use neupims_core::sharding::ShardedBackend;
use neupims_core::BACKEND_NAMES;
use neupims_kvcache::KvGeometry;
use neupims_sched::{
    calibration_drift, CostModelKind, MhaLatencyEstimator, TraceDrivenCostModel, TraceMemo,
    TraceSnapshot, COST_MODEL_NAMES, DEFAULT_DRIFT_TOLERANCE,
};
use neupims_types::{LlmConfig, Phase};
use neupims_workload::{arrival_stream, Dataset};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Options {
    samples: usize,
    quick: bool,
    backend: String,
    model: LlmConfig,
    dataset: Dataset,
    batch: Option<usize>,
    requests: usize,
    max_batch: usize,
    replicas: usize,
    policy: String,
    scheduler: String,
    chunk_tokens: u32,
    preemption: String,
    swap_gbps: f64,
    cost_model: CostModelKind,
    cost_model_set: bool,
    memo_cache: Option<String>,
    tolerance: f64,
    rate: f64,
    slo_ttft_ms: f64,
    slo_tpot_ms: f64,
    seed: Option<u64>,
    jobs: Option<usize>,
    tenants: Option<String>,
    autoscale: Option<String>,
    router: Option<String>,
    min_replicas: Option<usize>,
    tp: Option<u32>,
    pp: Option<u32>,
    interconnect: String,
    link_gbps: Option<f64>,
    suite: Option<String>,
    list: bool,
    reports_dir: String,
}

impl Options {
    /// True when `--tp` or `--pp` asked for a multi-chip deployment.
    fn sharding_requested(&self) -> bool {
        self.tp.is_some() || self.pp.is_some()
    }

    /// True when any orchestrator flag (`--tenants`, `--autoscale`,
    /// `--router`, `--min-replicas`) asked `fleet` to run through the
    /// meta-orchestrator instead of the bare dispatch loop.
    fn orchestration_requested(&self) -> bool {
        self.tenants.is_some()
            || self.autoscale.is_some()
            || self.router.is_some()
            || self.min_replicas.is_some()
    }

    /// Wraps `backend` in a [`ShardedBackend`] when `--tp`/`--pp` ask for
    /// a multi-chip deployment (collectives and stage hops priced by
    /// `--interconnect` / `--link-gbps`); otherwise returns it unchanged.
    fn maybe_sharded(
        &self,
        backend: Box<dyn Backend>,
    ) -> Result<Box<dyn Backend>, Box<dyn std::error::Error>> {
        if !self.sharding_requested() {
            return Ok(backend);
        }
        let spec = ClusterSpec::new(self.tp.unwrap_or(1), self.pp.unwrap_or(1));
        let fabric = interconnect_from_name(&self.interconnect, self.link_gbps)?;
        Ok(Box::new(ShardedBackend::new(backend, spec, fabric)?))
    }

    /// The replay memo a trace-priced run shares: disk-backed when
    /// `--memo-cache` names a directory, a fresh in-memory one when
    /// `always_under_trace` (fleet pools replays across replicas even
    /// without persistence), `None` otherwise — and always `None` under
    /// analytic pricing, where there is nothing to memoize.
    fn replay_memo(
        &self,
        always_under_trace: bool,
    ) -> Result<Option<TraceMemo>, Box<dyn std::error::Error>> {
        if self.cost_model != CostModelKind::TraceDriven {
            return Ok(None);
        }
        match &self.memo_cache {
            Some(dir) => Ok(Some(TraceMemo::with_cache_dir(dir)?)),
            None if always_under_trace => Ok(Some(TraceMemo::new())),
            None => Ok(None),
        }
    }
}

fn parse_model(name: &str) -> Option<LlmConfig> {
    match name.to_ascii_lowercase().as_str() {
        "gpt3-7b" | "7b" => Some(LlmConfig::gpt3_7b()),
        "gpt3-13b" | "13b" => Some(LlmConfig::gpt3_13b()),
        "gpt3-30b" | "30b" => Some(LlmConfig::gpt3_30b()),
        "gpt3-175b" | "175b" => Some(LlmConfig::gpt3_175b()),
        _ => None,
    }
}

fn parse_dataset(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "sharegpt" => Some(Dataset::ShareGpt),
        "alpaca" => Some(Dataset::Alpaca),
        _ => None,
    }
}

/// Entry point of the `neupims` CLI: parses `std::env::args` and runs the
/// requested command (also re-exported as the workspace root's `neupims`
/// bin, so `cargo run --release -- <command>` works from the repo root).
pub fn run_cli() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut opts = Options {
        samples: 10,
        quick: false,
        backend: "neupims".to_owned(),
        model: LlmConfig::gpt3_7b(),
        dataset: Dataset::ShareGpt,
        batch: None,
        requests: 64,
        max_batch: 64,
        replicas: 4,
        policy: "jsq".to_owned(),
        scheduler: "lump".to_owned(),
        chunk_tokens: 256,
        preemption: "drop".to_owned(),
        swap_gbps: 32.0,
        cost_model: CostModelKind::Analytic,
        cost_model_set: false,
        memo_cache: None,
        tolerance: DEFAULT_DRIFT_TOLERANCE,
        rate: 3.0,
        slo_ttft_ms: 50.0,
        slo_tpot_ms: 10.0,
        seed: None,
        jobs: None,
        tenants: None,
        autoscale: None,
        router: None,
        min_replicas: None,
        tp: None,
        pp: None,
        interconnect: "pcie".to_owned(),
        link_gbps: None,
        suite: None,
        list: false,
        reports_dir: "reports".to_owned(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.samples = n,
                None => {
                    eprintln!("--samples requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.batch = Some(n),
                None => {
                    eprintln!("--batch requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.requests = n,
                None => {
                    eprintln!("--requests requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--max-batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.max_batch = n,
                None => {
                    eprintln!("--max-batch requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--replicas" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.replicas = n,
                _ => {
                    eprintln!("--replicas requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match it.next() {
                Some(name) => opts.policy = name.clone(),
                None => {
                    eprintln!("--policy requires a name ({})", POLICY_NAMES.join("|"));
                    return ExitCode::FAILURE;
                }
            },
            "--scheduler" => match it.next() {
                Some(name) => opts.scheduler = name.clone(),
                None => {
                    eprintln!(
                        "--scheduler requires a name ({})",
                        SCHEDULER_NAMES.join("|")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--chunk-tokens" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.chunk_tokens = n,
                _ => {
                    eprintln!("--chunk-tokens requires a positive number of tokens");
                    return ExitCode::FAILURE;
                }
            },
            "--preemption" => match it.next() {
                Some(name) => opts.preemption = name.clone(),
                None => {
                    eprintln!(
                        "--preemption requires a name ({})",
                        PREEMPTION_NAMES.join("|")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--swap-gbps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(g) if g > 0.0 => opts.swap_gbps = g,
                _ => {
                    eprintln!("--swap-gbps requires a positive bandwidth (GB/s)");
                    return ExitCode::FAILURE;
                }
            },
            "--cost-model" => match it.next().and_then(|v| CostModelKind::from_name(v)) {
                Some(kind) => {
                    opts.cost_model = kind;
                    opts.cost_model_set = true;
                }
                None => {
                    eprintln!(
                        "--cost-model requires a name ({})",
                        COST_MODEL_NAMES.join("|")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--memo-cache" => match it.next() {
                Some(dir) => opts.memo_cache = Some(dir.clone()),
                None => {
                    eprintln!("--memo-cache requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) if t >= 0.0 => opts.tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a non-negative relative error");
                    return ExitCode::FAILURE;
                }
            },
            "--rate" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0.0 => opts.rate = r,
                _ => {
                    eprintln!("--rate requires a positive number (requests per Mcycle)");
                    return ExitCode::FAILURE;
                }
            },
            "--slo-ttft-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms > 0.0 => opts.slo_ttft_ms = ms,
                _ => {
                    eprintln!("--slo-ttft-ms requires a positive number (milliseconds)");
                    return ExitCode::FAILURE;
                }
            },
            "--slo-tpot-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms > 0.0 => opts.slo_tpot_ms = ms,
                _ => {
                    eprintln!("--slo-tpot-ms requires a positive number (milliseconds)");
                    return ExitCode::FAILURE;
                }
            },
            "--backend" => match it.next() {
                Some(name) => opts.backend = name.clone(),
                None => {
                    eprintln!("--backend requires a name ({})", BACKEND_NAMES.join("|"));
                    return ExitCode::FAILURE;
                }
            },
            "--model" => match it.next().and_then(|v| parse_model(v)) {
                Some(m) => opts.model = m,
                None => {
                    eprintln!("--model requires one of: gpt3-7b, gpt3-13b, gpt3-30b, gpt3-175b");
                    return ExitCode::FAILURE;
                }
            },
            "--dataset" => match it.next().and_then(|v| parse_dataset(v)) {
                Some(d) => opts.dataset = d,
                None => {
                    eprintln!("--dataset requires one of: sharegpt, alpaca");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = Some(s),
                None => {
                    eprintln!("--seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires a positive number of worker threads");
                    return ExitCode::FAILURE;
                }
            },
            "--tenants" => match it.next() {
                Some(spec) => opts.tenants = Some(spec.clone()),
                None => {
                    eprintln!(
                        "--tenants requires a spec: name:weight:priority[:ttft_ms:tpot_ms],..."
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--autoscale" => match it.next() {
                Some(name) => opts.autoscale = Some(name.clone()),
                None => {
                    eprintln!(
                        "--autoscale requires a name ({})",
                        AUTOSCALE_NAMES.join("|")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--router" => match it.next() {
                Some(name) => opts.router = Some(name.clone()),
                None => {
                    eprintln!("--router requires a name ({})", ROUTER_NAMES.join("|"));
                    return ExitCode::FAILURE;
                }
            },
            "--min-replicas" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.min_replicas = Some(n),
                _ => {
                    eprintln!("--min-replicas requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--tp" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.tp = Some(n),
                _ => {
                    eprintln!("--tp requires a positive tensor-parallel degree");
                    return ExitCode::FAILURE;
                }
            },
            "--pp" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.pp = Some(n),
                _ => {
                    eprintln!("--pp requires a positive pipeline-parallel degree");
                    return ExitCode::FAILURE;
                }
            },
            "--interconnect" => match it.next() {
                Some(name) => opts.interconnect = name.clone(),
                None => {
                    eprintln!(
                        "--interconnect requires a name ({})",
                        INTERCONNECT_NAMES.join("|")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--link-gbps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(g) if g > 0.0 => opts.link_gbps = Some(g),
                _ => {
                    eprintln!("--link-gbps requires a positive bandwidth (GB/s)");
                    return ExitCode::FAILURE;
                }
            },
            "--reports-dir" => match it.next() {
                Some(dir) => opts.reports_dir = dir.clone(),
                None => {
                    eprintln!("--reports-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => opts.list = true,
            "--quick" => opts.quick = true,
            cmd if command.is_none() => command = Some(cmd.to_owned()),
            // A second positional argument names the eval suite.
            suite if opts.suite.is_none() && !suite.starts_with('-') => {
                opts.suite = Some(suite.to_owned());
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.quick {
        opts.samples = opts.samples.min(3);
    }

    let command = command.unwrap_or_else(|| "all".to_owned());
    match run(&command, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    if command == "fig4" {
        return cmd_fig4();
    }
    if command == "fig5" {
        return cmd_fig5();
    }
    if command == "area" {
        return cmd_area();
    }
    if command == "eval" {
        // The eval runner calibrates per scenario (suites may override
        // the memory system), so it skips the shared context below.
        return cmd_eval(opts);
    }

    // Every remaining command needs the calibrated context.
    eprintln!("calibrating PIM constants from the cycle model ...");
    let ctx = ExperimentContext::table2()?.with_samples(opts.samples);

    match command {
        "sweep" => cmd_sweep(&ctx, opts),
        "serve" => cmd_serve(&ctx, opts),
        "fleet" => cmd_fleet(&ctx, opts),
        "calibrate" => cmd_calibrate(&ctx),
        "drift" => cmd_drift(&ctx, opts),
        "fig6" => cmd_fig6(&ctx),
        "fig12" => cmd_fig12(&ctx, opts),
        "fig13" => cmd_fig13(&ctx, opts),
        "fig14" => cmd_fig14(&ctx),
        "fig15" => cmd_fig15(&ctx, opts),
        "table4" => cmd_table4(&ctx),
        "table5" => cmd_table5(&ctx),
        "all" => {
            cmd_fig4()?;
            cmd_fig5()?;
            cmd_calibrate(&ctx)?;
            cmd_fig6(&ctx)?;
            cmd_fig12(&ctx, opts)?;
            cmd_fig13(&ctx, opts)?;
            cmd_fig14(&ctx)?;
            cmd_fig15(&ctx, opts)?;
            cmd_table4(&ctx)?;
            cmd_table5(&ctx)?;
            cmd_area()
        }
        other => {
            eprintln!("unknown command {other:?} (try: all, fig12, table4, ...)");
            Err("unknown command".into())
        }
    }
}

fn cmd_sweep(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let batches: Vec<usize> = match opts.batch {
        Some(b) => vec![b],
        None if opts.quick => vec![64, 256],
        None => vec![64, 128, 256, 384, 512],
    };
    if opts.sharding_requested() {
        // Reject a bad fabric name or bandwidth before any table output.
        interconnect_from_name(&opts.interconnect, opts.link_gbps)?;
    }
    println!(
        "\n## Sweep — {} / {} / {} ({} cost model; tokens/s, mean of {} warm batches)\n",
        opts.backend,
        opts.model.name,
        opts.dataset.name(),
        opts.cost_model,
        ctx.samples
    );
    if opts.sharding_requested() {
        println!(
            "sharded over tp{} x pp{} chips on the {} fabric\n",
            opts.tp.unwrap_or(1),
            opts.pp.unwrap_or(1),
            opts.interconnect
        );
    }
    println!("| batch | tokens/s |");
    println!("|---:|---:|");
    for &batch in &batches {
        let backend = opts.maybe_sharded(ctx.backend_with_cost(&opts.backend, opts.cost_model)?)?;
        let mut builder = ctx
            .simulation()
            .model(opts.model.clone())
            .backend(backend)
            .dataset(opts.dataset)
            .batch(batch);
        if opts.sharding_requested() {
            // The wrapper supplies the parallelism: run the full layer
            // stack with device-internal TP 1 underneath it.
            builder = builder.tp(1).layers(opts.model.num_layers);
        }
        let sim = builder.build()?;
        println!("| {} | {:.0} |", batch, sim.throughput()?);
    }
    Ok(())
}

fn cmd_serve(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let backend = opts.maybe_sharded(ctx.backend_with_cost(&opts.backend, opts.cost_model)?)?;
    let mut builder = ctx
        .simulation()
        .model(opts.model.clone())
        .backend(backend)
        .dataset(opts.dataset)
        .batch(opts.max_batch.max(1))
        .scheduler(scheduler_from_name(&opts.scheduler, opts.chunk_tokens)?)
        .preemption(preemption_from_name(&opts.preemption)?)
        .swap(SwapConfig {
            gb_per_sec: opts.swap_gbps,
        })
        .cost_model(opts.cost_model);
    if let Some(memo) = opts.replay_memo(false)? {
        builder = builder.trace_memo(memo);
    }
    if opts.sharding_requested() {
        // The wrapper supplies the parallelism: run the full layer stack
        // with device-internal TP 1 underneath it.
        builder = builder.tp(1).layers(opts.model.num_layers);
    }
    let sim = builder.build()?;
    println!(
        "\n## Serve — {} requests ({}) through {} serving {} ({} scheduler, {} preemption, {} cost model)\n",
        opts.requests,
        opts.dataset.name(),
        sim.backend().label(),
        opts.model.name,
        sim.scheduler().name(),
        sim.preemption().name(),
        opts.cost_model,
    );

    let slo = Some(SloTargets {
        ttft: (opts.slo_ttft_ms * 1e6) as u64,
        tpot: opts.slo_tpot_ms * 1e6,
    });
    let mut serving = sim.serving_with_slo(opts.max_batch.max(1), 0, slo);
    let mut rng = StdRng::seed_from_u64(opts.seed.unwrap_or(DEFAULT_SERVE_SEED));
    let arrivals = arrival_stream(&mut rng, opts.rate, opts.requests);
    for (i, &at) in arrivals.iter().enumerate() {
        let input = opts.dataset.sample_input(&mut rng);
        let output = opts.dataset.sample_output(&mut rng).min(128);
        serving.submit(i as u32, input, output, at)?;
    }
    let out = serving.run()?;
    println!("| metric | value |");
    println!("|---|---:|");
    println!("| completed requests | {} |", out.completed);
    println!("| dropped requests | {} |", out.dropped);
    println!("| generated tokens | {} |", out.tokens);
    println!("| decode iterations | {} |", out.iterations);
    println!(
        "| simulated time | {:.2} ms |",
        out.total_cycles as f64 / 1e6
    );
    println!("| throughput | {:.0} tokens/s |", out.tokens_per_sec());
    println!("| mean latency | {:.2} ms |", out.mean_latency / 1e6);
    println!(
        "| p50 / p95 / p99 latency | {:.2} / {:.2} / {:.2} ms |",
        out.latency_percentile(50.0) as f64 / 1e6,
        out.latency_percentile(95.0) as f64 / 1e6,
        out.latency_percentile(99.0) as f64 / 1e6
    );
    println!(
        "| p50 / p99 TTFT | {:.2} / {:.2} ms |",
        out.ttft_percentile(50.0) as f64 / 1e6,
        out.ttft_percentile(99.0) as f64 / 1e6
    );
    println!(
        "| p50 / p99 TPOT | {:.3} / {:.3} ms |",
        out.tpot_percentile(50.0) / 1e6,
        out.tpot_percentile(99.0) / 1e6
    );
    println!(
        "| SLO attainment (TTFT {} ms, TPOT {} ms) | {:.1}% |",
        opts.slo_ttft_ms,
        opts.slo_tpot_ms,
        out.slo_attainment() * 100.0
    );
    println!("| goodput | {:.0} tokens/s |", out.goodput());
    println!(
        "| peak KV utilization | {:.1}% |",
        out.peak_kv_utilization * 100.0
    );
    print_preemption_rows(
        out.preemptions,
        out.restores,
        out.preemption_stall_cycles,
        out.restore_overhead_cycles,
    );
    println!(
        "| mean decode batch | {:.1} of {} |",
        out.mean_decode_batch(),
        opts.max_batch.max(1)
    );
    println!(
        "| on-device prefill | {:.2} ms |",
        out.prefill_cycles_on_device as f64 / 1e6
    );
    println!(
        "| NPU/PIM overlap (hidden / efficiency) | {:.2} ms / {:.1}% |",
        out.overlap_hidden_cycles as f64 / 1e6,
        out.overlap_efficiency() * 100.0
    );
    print_trace_rows(out.pim_trace.as_ref());
    Ok(())
}

fn cmd_fleet(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    if opts.orchestration_requested() {
        return cmd_orchestrate(ctx, opts);
    }
    // Comma-separated backend and scheduler names are cycled over the
    // replicas, so `--backend neupims,gpu --scheduler interleaved,lump
    // --replicas 4` builds a heterogeneous fleet with per-replica
    // schedulers.
    let names: Vec<&str> = opts.backend.split(',').map(str::trim).collect();
    let sched_names: Vec<&str> = opts.scheduler.split(',').map(str::trim).collect();
    let slo = SloTargets {
        ttft: (opts.slo_ttft_ms * 1e6) as u64,
        tpot: opts.slo_tpot_ms * 1e6,
    };
    // With --tp/--pp each replica is its own sharded chip group: the
    // wrapper supplies the parallelism, so the serving config runs the
    // full layer stack with device-internal TP 1 underneath it.
    let cfg = ServingConfig {
        max_batch: opts.max_batch.max(1),
        tp: if opts.sharding_requested() {
            1
        } else {
            opts.model.parallelism.tp
        },
        layers: if opts.sharding_requested() {
            opts.model.num_layers
        } else {
            opts.model.num_layers / opts.model.parallelism.pp
        },
        target_completions: 0,
        slo: Some(slo),
    };
    let mut replicas = Vec::new();
    for i in 0..opts.replicas {
        let backend =
            opts.maybe_sharded(ctx.backend_with_cost(names[i % names.len()], opts.cost_model)?)?;
        let scheduler = scheduler_from_name(sched_names[i % sched_names.len()], opts.chunk_tokens)?;
        replicas.push(
            ServingSim::with_scheduler(backend, opts.model.clone(), cfg.clone(), scheduler)
                .with_cost_model(opts.cost_model),
        );
    }
    let labels: Vec<String> = replicas
        .iter()
        .map(|r| format!("{} ({})", r.backend().label(), r.scheduler_name()))
        .collect();
    let mut fleet = FleetSim::new(replicas, policy_from_name(&opts.policy)?)?
        .with_preemption(preemption_from_name(&opts.preemption)?)
        .with_swap(SwapConfig {
            gb_per_sec: opts.swap_gbps,
        });
    // Under trace pricing the whole fleet shares one replay memo (disk-
    // backed with --memo-cache), so each context bucket simulates once.
    let memo = opts.replay_memo(true)?;
    if let Some(memo) = &memo {
        fleet = fleet.with_shared_trace_memo(memo);
    }
    if let Some(jobs) = opts.jobs {
        fleet = fleet.with_jobs(jobs);
    }

    let mut rng = StdRng::seed_from_u64(opts.seed.unwrap_or(DEFAULT_FLEET_SEED));
    let arrivals = arrival_stream(&mut rng, opts.rate, opts.requests);
    for (i, &at) in arrivals.iter().enumerate() {
        fleet.submit(FleetRequest {
            id: i as u32,
            input_len: opts.dataset.sample_input(&mut rng),
            output_len: opts.dataset.sample_output(&mut rng).min(128),
            arrival: at,
        })?;
    }

    println!(
        "\n## Fleet — {} requests ({}) at {} req/Mcycle over {} x {} replicas, policy {}\n",
        opts.requests,
        opts.dataset.name(),
        opts.rate,
        opts.replicas,
        opts.model.name,
        fleet.policy_name(),
    );
    if memo.is_some() {
        let warmed = fleet.warm_replay();
        eprintln!("warm replay primed {warmed} cold context buckets before serving");
    }
    let out = fleet.run()?;
    println!("| metric | value |");
    println!("|---|---:|");
    println!(
        "| submitted / completed / dropped | {} / {} / {} |",
        out.submitted, out.completed, out.dropped
    );
    println!("| generated tokens | {} |", out.tokens);
    println!("| makespan | {:.2} ms |", out.makespan as f64 / 1e6);
    println!(
        "| fleet throughput | {:.0} tokens/s |",
        out.tokens_per_sec()
    );
    println!(
        "| p50 / p99 latency | {:.2} / {:.2} ms |",
        out.latency_percentile(50.0) as f64 / 1e6,
        out.latency_percentile(99.0) as f64 / 1e6
    );
    println!(
        "| p50 / p99 TTFT | {:.2} / {:.2} ms |",
        out.ttft_percentile(50.0) as f64 / 1e6,
        out.ttft_percentile(99.0) as f64 / 1e6
    );
    println!(
        "| p50 / p99 TPOT | {:.3} / {:.3} ms |",
        out.tpot_percentile(50.0) / 1e6,
        out.tpot_percentile(99.0) / 1e6
    );
    println!(
        "| SLO attainment (TTFT {} ms, TPOT {} ms) | {:.1}% |",
        opts.slo_ttft_ms,
        opts.slo_tpot_ms,
        out.slo_attainment() * 100.0
    );
    println!("| goodput | {:.0} tokens/s |", out.goodput());
    print_preemption_rows(
        out.preemptions,
        out.restores,
        out.preemption_stall_cycles,
        out.restore_overhead_cycles,
    );
    println!(
        "| NPU/PIM overlap (hidden / efficiency) | {:.2} ms / {:.1}% |",
        out.overlap_hidden_cycles as f64 / 1e6,
        out.overlap_efficiency() * 100.0
    );
    print_trace_rows(out.pim_trace.as_ref());

    println!(
        "\n| replica | backend (scheduler) | completed | dropped | preempted | tokens | clock (ms) | peak KV |"
    );
    println!("|---:|---|---:|---:|---:|---:|---:|---:|");
    for (i, r) in out.replicas.iter().enumerate() {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2} | {:.1}% |",
            i,
            labels[i],
            r.completed,
            r.dropped,
            r.preemptions,
            r.tokens,
            r.total_cycles as f64 / 1e6,
            r.peak_kv_utilization * 100.0
        );
    }
    Ok(())
}

/// Parses a `--tenants` spec: `name:weight:priority[:ttft_ms:tpot_ms]`
/// entries separated by commas. TTFT/TPOT default to the global
/// `--slo-ttft-ms`/`--slo-tpot-ms` targets; weights are normalized to
/// shares.
fn parse_tenants(
    spec: &str,
    default_slo: SloTargets,
) -> Result<(Vec<TenantClass>, Vec<f64>), Box<dyn std::error::Error>> {
    let mut tenants = Vec::new();
    let mut weights = Vec::new();
    for entry in spec.split(',') {
        let parts: Vec<&str> = entry.trim().split(':').collect();
        if parts.len() < 3 || parts.len() > 5 {
            return Err(format!(
                "bad --tenants entry {entry:?} (expected name:weight:priority[:ttft_ms:tpot_ms])"
            )
            .into());
        }
        let name = parts[0];
        let weight: f64 = parts[1]
            .parse()
            .map_err(|_| format!("bad weight in --tenants entry {entry:?}"))?;
        if weight <= 0.0 {
            return Err(format!("tenant {name:?} weight must be positive").into());
        }
        let priority: u8 = parts[2]
            .parse()
            .map_err(|_| format!("bad priority in --tenants entry {entry:?}"))?;
        let mut slo = default_slo;
        if let Some(ms) = parts.get(3) {
            let ttft_ms: f64 = ms
                .parse()
                .map_err(|_| format!("bad ttft_ms in --tenants entry {entry:?}"))?;
            slo.ttft = (ttft_ms * 1e6) as u64;
        }
        if let Some(ms) = parts.get(4) {
            let tpot_ms: f64 = ms
                .parse()
                .map_err(|_| format!("bad tpot_ms in --tenants entry {entry:?}"))?;
            slo.tpot = tpot_ms * 1e6;
        }
        tenants.push(TenantClass::new(name, slo, priority, 0.0));
        weights.push(weight);
    }
    let total: f64 = weights.iter().sum();
    for (t, w) in tenants.iter_mut().zip(&weights) {
        t.share = w / total;
    }
    Ok((tenants, weights))
}

/// The orchestrated fleet path (`fleet` with any of `--tenants`,
/// `--autoscale`, `--router`, `--min-replicas`): the same replica
/// construction as `cmd_fleet`, run through the capability-aware
/// meta-orchestrator with per-tenant reporting and the goodput-per-cost
/// bottom line.
fn cmd_orchestrate(
    ctx: &ExperimentContext,
    opts: &Options,
) -> Result<(), Box<dyn std::error::Error>> {
    let names: Vec<&str> = opts.backend.split(',').map(str::trim).collect();
    let sched_names: Vec<&str> = opts.scheduler.split(',').map(str::trim).collect();
    let default_slo = SloTargets {
        ttft: (opts.slo_ttft_ms * 1e6) as u64,
        tpot: opts.slo_tpot_ms * 1e6,
    };
    let (tenants, weights) = match &opts.tenants {
        Some(spec) => parse_tenants(spec, default_slo)?,
        None => (
            vec![TenantClass::new("default", default_slo, 200, 1.0)],
            vec![1.0],
        ),
    };
    let cfg = ServingConfig {
        max_batch: opts.max_batch.max(1),
        tp: if opts.sharding_requested() {
            1
        } else {
            opts.model.parallelism.tp
        },
        layers: if opts.sharding_requested() {
            opts.model.num_layers
        } else {
            opts.model.num_layers / opts.model.parallelism.pp
        },
        target_completions: 0,
        slo: Some(default_slo),
    };
    let memo = opts.replay_memo(true)?;
    let mut slots = Vec::new();
    for i in 0..opts.replicas {
        let backend =
            opts.maybe_sharded(ctx.backend_with_cost(names[i % names.len()], opts.cost_model)?)?;
        let scheduler = scheduler_from_name(sched_names[i % sched_names.len()], opts.chunk_tokens)?;
        let mut slot =
            ServingSim::with_scheduler(backend, opts.model.clone(), cfg.clone(), scheduler)
                .with_cost_model(opts.cost_model)
                .with_preemption(preemption_from_name(&opts.preemption)?)
                .with_swap(SwapConfig {
                    gb_per_sec: opts.swap_gbps,
                });
        if let Some(memo) = &memo {
            slot = slot.with_trace_memo(memo);
        }
        slots.push(slot);
    }

    let autoscale_name = opts.autoscale.as_deref().unwrap_or("static");
    let router_name = opts.router.as_deref().unwrap_or("load");
    let autoscale = autoscale_from_name(autoscale_name)?;
    let router = router_from_name(router_name)?;
    // Static autoscaling holds the whole fleet; the scalers default to a
    // floor of one and grow on demand.
    let default_min = if autoscale_name.eq_ignore_ascii_case("static") {
        opts.replicas
    } else {
        1
    };
    let mut orch_cfg = OrchestratorConfig::default_for(opts.replicas);
    orch_cfg.min_replicas = opts
        .min_replicas
        .unwrap_or(default_min)
        .clamp(1, opts.replicas);
    let mut orch = Orchestrator::new(slots, tenants, router, autoscale, orch_cfg)?;
    if let Some(jobs) = opts.jobs {
        orch = orch.with_jobs(jobs);
    }

    // The same seeded arrival + shape stream as the bare fleet; the
    // tenant of each request is a weighted draw from the same RNG.
    let mut rng = StdRng::seed_from_u64(opts.seed.unwrap_or(DEFAULT_FLEET_SEED));
    let arrivals = arrival_stream(&mut rng, opts.rate, opts.requests);
    let total_weight: f64 = weights.iter().sum();
    for (i, &at) in arrivals.iter().enumerate() {
        let input_len = opts.dataset.sample_input(&mut rng);
        let output_len = opts.dataset.sample_output(&mut rng).min(128);
        let mut pick = rng.random::<f64>() * total_weight;
        let mut tenant = 0;
        for (k, w) in weights.iter().enumerate() {
            tenant = k;
            pick -= w;
            if pick <= 0.0 {
                break;
            }
        }
        orch.submit(OrchRequest {
            req: FleetRequest {
                id: i as u32,
                input_len,
                output_len,
                arrival: at,
            },
            tenant,
        })?;
    }

    println!(
        "\n## Orchestrate — {} requests ({}) at {} req/Mcycle over {} slots ({} router, {} autoscale, {} tenants)\n",
        opts.requests,
        opts.dataset.name(),
        opts.rate,
        opts.replicas,
        orch.route_name(),
        orch.autoscale_name(),
        orch.tenants().len(),
    );
    let out = orch.run()?;
    println!("| metric | value |");
    println!("|---|---:|");
    println!(
        "| submitted / dispatched / shed | {} / {} / {} |",
        out.fleet.submitted + out.shed,
        out.fleet.submitted,
        out.shed
    );
    println!(
        "| completed / dropped / deferred | {} / {} / {} |",
        out.fleet.completed, out.fleet.dropped, out.deferred
    );
    println!("| generated tokens | {} |", out.fleet.tokens);
    println!("| makespan | {:.2} ms |", out.fleet.makespan as f64 / 1e6);
    println!(
        "| fleet throughput | {:.0} tokens/s |",
        out.fleet.tokens_per_sec()
    );
    println!(
        "| peak / max replicas | {} / {} |",
        out.peak_replicas,
        out.slots.len()
    );
    println!(
        "| warmups (scale-ups / scale-downs) | {} ({} / {}) |",
        out.warmups, out.scale_ups, out.scale_downs
    );
    println!(
        "| replica capacity paid | {:.2} Mcycles |",
        out.replica_cycles_on as f64 / 1e6
    );
    println!(
        "| goodput per cost | {:.2} tokens/Mcycle |",
        out.goodput_per_cost()
    );
    print_preemption_rows(
        out.fleet.preemptions,
        out.fleet.restores,
        out.fleet.preemption_stall_cycles,
        out.fleet.restore_overhead_cycles,
    );
    print_trace_rows(out.fleet.pim_trace.as_ref());

    println!(
        "\n| tenant | prio | share | submitted | admitted | deferred | shed | completed | SLO | goodput (tok/s) | p99 TTFT (ms) |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for (t, class) in out.tenants.iter().zip(orch.tenants()) {
        let goodput = if out.fleet.makespan == 0 {
            0.0
        } else {
            t.goodput_tokens as f64 / (out.fleet.makespan as f64 / 1e9)
        };
        println!(
            "| {} | {} | {:.0}% | {} | {} | {} | {} | {} | {:.1}% | {:.0} | {:.2} |",
            t.name,
            t.priority,
            class.share * 100.0,
            t.submitted,
            t.admitted,
            t.deferred,
            t.shed,
            t.completed,
            t.slo_attainment() * 100.0,
            goodput,
            t.ttft_percentile(99.0) as f64 / 1e6,
        );
    }
    Ok(())
}

/// Appends the KV-pressure preemption rows to a serve or fleet report
/// (no-op when the run never preempted and never stalled).
fn print_preemption_rows(preemptions: u64, restores: u64, stall: u64, overhead: u64) {
    if preemptions == 0 && restores == 0 {
        return;
    }
    println!("| KV preemptions / restores | {preemptions} / {restores} |");
    println!(
        "| preemption stall (parked wall-clock) | {:.2} ms |",
        stall as f64 / 1e6
    );
    println!(
        "| restore overhead (recompute + swap-in) | {:.2} ms |",
        overhead as f64 / 1e6
    );
}

/// Appends the trace-driven cost model's DRAM activity rows to a serve or
/// fleet report (no-op under analytic pricing).
fn print_trace_rows(trace: Option<&TraceSnapshot>) {
    let Some(t) = trace else { return };
    println!(
        "| PIM trace: row-buffer hits / misses | {} / {} ({:.1}% hit rate) |",
        t.stats.row_hits,
        t.stats.row_misses,
        t.stats.hit_rate() * 100.0
    );
    println!(
        "| PIM trace: ACT / PRE / REF commands | {} / {} / {} |",
        t.stats.acts + t.stats.pim_acts,
        t.stats.precharges + t.stats.pim_precharges,
        t.stats.refreshes
    );
    println!(
        "| PIM trace: C/A bus busy | {:.3} ms |",
        t.stats.ca_busy as f64 / 1e6
    );
    println!(
        "| PIM trace: streams simulated / memoized | {} / {} ({:.1}% memo hits) |",
        t.replays,
        t.memo_hits,
        t.memo_hit_rate() * 100.0
    );
    if t.disk_hits > 0 {
        println!(
            "| PIM trace: replay-cache disk hits | {} ({:.1}% of first touches) |",
            t.disk_hits,
            t.disk_hit_rate() * 100.0
        );
    }
}

fn cmd_drift(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let tp = opts.model.parallelism.tp;
    let geo = KvGeometry::with_tp(&opts.model, &ctx.cfg.mem, tp);
    let analytic = MhaLatencyEstimator::new(geo, ctx.cal.l_tile, ctx.cal.l_gwrite);
    let trace = TraceDrivenCostModel::new(&ctx.cfg, geo, true);
    let seq_lens: Vec<u64> = [
        1u64, 8, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
    ]
    .to_vec();
    let report = calibration_drift(&analytic, &trace, &seq_lens, opts.tolerance);

    println!(
        "\n## Calibration drift — Algorithm 1 vs cycle-level trace ({}, TP={}, tolerance {:.0}%)\n",
        opts.model.name,
        tp,
        opts.tolerance * 100.0
    );
    println!("| seq len | analytic (cycles) | trace (cycles) | rel err | |");
    println!("|---:|---:|---:|---:|---|");
    for p in &report.points {
        let flag = if p.rel_err() > report.tolerance {
            "DRIFT"
        } else {
            ""
        };
        println!(
            "| {} | {:.0} | {:.0} | {:.1}% | {} |",
            p.seq_len,
            p.analytic,
            p.trace,
            p.rel_err() * 100.0,
            flag
        );
    }
    let violations = report.violations();
    if violations.is_empty() {
        println!(
            "\nno drift beyond {:.0}%: the Algorithm 1 constants still summarize the cycle model",
            opts.tolerance * 100.0
        );
        Ok(())
    } else {
        println!(
            "\n{} of {} points drift beyond {:.0}% (max {:.1}%) — short contexts pay Algorithm 1's \
             full-tile rounding; recalibrate or switch those runs to --cost-model trace",
            violations.len(),
            report.points.len(),
            opts.tolerance * 100.0,
            report.max_rel_err() * 100.0
        );
        // A drifted calibration is a failure, not a report: CI and
        // scripts gate on the exit code.
        Err(format!(
            "calibration drift: {} of {} points exceed the {:.0}% tolerance",
            violations.len(),
            report.points.len(),
            opts.tolerance * 100.0
        )
        .into())
    }
}

fn cmd_eval(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    if opts.list {
        println!("\n## Eval suites\n");
        println!("| suite | description |");
        println!("|---|---|");
        for name in neupims_eval::SUITE_NAMES {
            println!(
                "| {} | {} |",
                name,
                neupims_eval::builtin_description(name).unwrap_or_default()
            );
        }
        println!(
            "\nrun one with: neupims-sim eval <suite> [--seed N] [--jobs N] [--reports-dir DIR]"
        );
        return Ok(());
    }
    let suite_name = opts.suite.as_deref().unwrap_or("smoke");
    let suite = neupims_eval::load_suite(suite_name)?;
    eprintln!(
        "running eval suite {} ({} scenarios, {} checks) ...",
        suite.name,
        suite.scenarios.len(),
        suite
            .scenarios
            .iter()
            .map(|s| s.expects.len())
            .sum::<usize>()
            + suite.compares.len()
    );
    let overrides = neupims_eval::EvalOverrides {
        seed: opts.seed,
        jobs: opts.jobs,
        cost_model: opts.cost_model_set.then_some(opts.cost_model),
        memo_cache: opts.memo_cache.as_ref().map(std::path::PathBuf::from),
    };
    let report = neupims_eval::run_eval_with_opts(&suite, &overrides)?;
    print!("{}", report.render());
    // The persistent-cache CI smoke job greps these lines: a rerun over
    // a populated --memo-cache must report a 100.0% disk hit rate.
    for run in &report.scenarios {
        if let Some(rate) = run.metrics.get("disk_hit_rate") {
            println!("{}: disk hit rate: {:.1}%", run.name, rate * 100.0);
        }
    }
    let (keyed, latest) =
        neupims_eval::store_report(std::path::Path::new(&opts.reports_dir), &report)?;
    println!("\nstored: {} (alias {})", keyed.display(), latest.display());
    let (_, _, fail) = report.counts();
    if fail > 0 {
        return Err(format!(
            "eval suite {} violated {} fail-severity golden check(s)",
            suite.name, fail
        )
        .into());
    }
    Ok(())
}

fn cmd_calibrate(ctx: &ExperimentContext) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Calibrated PIM constants (from the cycle model)\n");
    let c = &ctx.cal;
    println!("| constant | value |");
    println!("|---|---|");
    println!("| L_tile (composite PIM_GEMV) | {:.1} cycles |", c.l_tile);
    println!(
        "| L_tile (fine-grained Newton) | {:.1} cycles |",
        c.l_tile_fine
    );
    println!("| L_GWRITE | {:.1} cycles |", c.l_gwrite);
    println!("| dot-product round | {} cycles |", c.dot_cycles);
    println!(
        "| MEM stream bandwidth (solo) | {:.2} B/cycle/channel |",
        c.mem_stream_bw
    );
    println!(
        "| MEM stream bandwidth (during PIM) | {:.2} B/cycle/channel |",
        c.mem_stream_bw_shared
    );
    println!(
        "| PIM in-bank bandwidth | {:.2} B/cycle/channel |",
        c.pim_stream_bw
    );
    println!("| PIM bandwidth advantage | {:.2}x |", c.pim_advantage());
    Ok(())
}

fn cmd_fig4() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 4 — arithmetic intensity of LLM layers (A100 roofline)\n");
    println!("| model | phase | operator | FLOPs/byte | achievable TFLOPS |");
    println!("|---|---|---|---:|---:|");
    for r in fig4_roofline() {
        let phase = match r.phase {
            Phase::Summarization => "summarization",
            Phase::Generation => "generation",
        };
        println!(
            "| {} | {} | {} | {:.2} | {:.1} |",
            r.model, phase, r.operator, r.intensity, r.tflops
        );
    }
    Ok(())
}

fn cmd_fig5() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 5 — GPU resource utilization (generation phase)\n");
    println!("| GPU | model | compute | bandwidth | capacity |");
    println!("|---|---|---:|---:|---:|");
    for r in fig5_gpu_util() {
        println!(
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% |",
            r.gpu,
            r.model,
            r.compute * 100.0,
            r.bandwidth * 100.0,
            r.capacity * 100.0
        );
    }
    Ok(())
}

fn cmd_fig6(ctx: &ExperimentContext) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 6 — naive NPU+PIM utilization per decoder stage\n");
    println!("| stage | NPU compute | PIM compute |");
    println!("|---|---:|---:|");
    for r in fig6_layer_util(ctx)? {
        println!(
            "| {} | {:.1}% | {:.1}% |",
            r.stage,
            r.npu * 100.0,
            r.pim * 100.0
        );
    }
    Ok(())
}

fn cmd_fig12(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 12 — throughput comparison (tokens/s, mean of warm batches)\n");
    let batches: Vec<usize> = if opts.quick {
        vec![64, 256]
    } else {
        vec![64, 128, 256, 384, 512]
    };
    let models = if opts.quick {
        vec![LlmConfig::gpt3_7b(), LlmConfig::gpt3_30b()]
    } else {
        LlmConfig::table3()
    };

    // Panels are independent; sweep them across worker threads and print
    // in deterministic order afterwards.
    type PanelKey = (usize, usize); // (dataset idx, model idx)
    type PanelRows = Vec<(usize, Vec<neupims_core::experiments::Fig12Row>)>;
    type PanelMap = std::collections::HashMap<PanelKey, PanelRows>;
    let results: std::sync::Mutex<PanelMap> =
        std::sync::Mutex::new(std::collections::HashMap::new());
    let mut panels = Vec::new();
    for (di, dataset) in Dataset::ALL.into_iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            panels.push((di, dataset, mi, model.clone()));
        }
    }
    let err: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        for chunk in panels.chunks(1.max(panels.len() / 8)) {
            let results = &results;
            let err = &err;
            let batches = &batches;
            scope.spawn(move || {
                for (di, dataset, mi, model) in chunk {
                    let mut rows = Vec::new();
                    for &batch in batches.iter() {
                        match fig12_throughput(ctx, *dataset, model, batch) {
                            Ok(r) => rows.push((batch, r)),
                            Err(e) => {
                                *err.lock().unwrap() = Some(e.to_string());
                                return;
                            }
                        }
                    }
                    results.lock().unwrap().insert((*di, *mi), rows);
                }
            });
        }
    });
    if let Some(e) = err.lock().unwrap().take() {
        return Err(e.into());
    }

    let results = results.into_inner().unwrap();
    for (di, dataset) in Dataset::ALL.into_iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            println!("\n### {} / {}\n", dataset.name(), model.name);
            println!("| batch | GPU-only | NPU-only | NPU+PIM | NeuPIMs | NeuPIMs/NPU+PIM |");
            println!("|---:|---:|---:|---:|---:|---:|");
            for (batch, rows) in &results[&(di, mi)] {
                let get = |s: &str| {
                    rows.iter()
                        .find(|r| r.system == s)
                        .map(|r| r.tokens_per_sec)
                        .unwrap_or(0.0)
                };
                println!(
                    "| {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.2}x |",
                    batch,
                    get("GPU-only"),
                    get("NPU-only"),
                    get("NPU+PIM"),
                    get("NeuPIMs"),
                    get("NeuPIMs") / get("NPU+PIM").max(1e-9),
                );
            }
        }
    }
    Ok(())
}

fn cmd_fig13(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 13 — ablation (GPT3-7B, ShareGPT; normalized to NPU+PIM)\n");
    let batches: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[64, 128, 256, 384, 512]
    };
    let rows = fig13_ablation(ctx, batches)?;
    println!("| batch | NPU+PIM | +DRB | +DRB+GMLBP | +DRB+GMLBP+SBI |");
    println!("|---:|---:|---:|---:|---:|");
    for &batch in batches {
        let get = |v: &str| {
            rows.iter()
                .find(|r| r.batch == batch && r.variant == v)
                .map(|r| r.improvement)
                .unwrap_or(0.0)
        };
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            batch,
            get("NPU+PIM"),
            get("NeuPIMs-DRB"),
            get("NeuPIMs-DRB+GMLBP"),
            get("NeuPIMs-DRB+GMLBP+SBI"),
        );
    }
    Ok(())
}

fn cmd_fig14(ctx: &ExperimentContext) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 14 — (TP, PP) scaling at 256 requests (GPT3-7B)\n");
    println!("| devices | (TP, PP) | throughput (1k tokens/s) |");
    println!("|---:|---|---:|");
    for r in fig14_parallelism(ctx)? {
        println!(
            "| {} | ({}, {}) | {:.1} |",
            r.devices,
            r.tp,
            r.pp,
            r.tokens_per_sec / 1e3
        );
    }
    Ok(())
}

fn cmd_fig15(ctx: &ExperimentContext, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Figure 15 — NeuPIMs speedup over TransPIM (GPT3-7B)\n");
    let batches: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[64, 128, 256, 384, 512]
    };
    let rows = fig15_transpim(ctx, batches)?;
    println!("| dataset | batch | speedup |");
    println!("|---|---:|---:|");
    for r in &rows {
        println!("| {} | {} | {:.0}x |", r.dataset, r.batch, r.speedup);
    }
    let avg = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    println!("\naverage speedup: {avg:.0}x (paper: ~228x, range 79-431x)");
    Ok(())
}

fn cmd_table4(ctx: &ExperimentContext) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Table 4 — average resource utilization (GPT3-30B, B=256, ShareGPT)\n");
    println!("| resource | NPU-only | NPU+PIM | NeuPIMs |");
    println!("|---|---:|---:|---:|");
    let rows = table4_utilization(ctx)?;
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    println!(
        "| NPU | {} | {} | {} |",
        pct(rows[0].npu),
        pct(rows[1].npu),
        pct(rows[2].npu)
    );
    println!("| PIM | - | {} | {} |", pct(rows[1].pim), pct(rows[2].pim));
    println!(
        "| Bandwidth | {} | {} | {} |",
        pct(rows[0].bandwidth),
        pct(rows[1].bandwidth),
        pct(rows[2].bandwidth)
    );
    Ok(())
}

fn cmd_table5(ctx: &ExperimentContext) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Table 5 — DRAM power and energy\n");
    let t = table5_power(ctx)?;
    println!("| system | average power (mW/channel) |");
    println!("|---|---:|");
    println!("| NPU-only HBM (non-PIM) | {:.1} |", t.baseline_mw);
    println!("| NeuPIMs dual-row-buffer PIM | {:.1} |", t.neupims_mw);
    println!(
        "\npower ratio {:.2}x, fleet speedup {:.2}x -> relative energy {:.2} ({}% reduction)",
        t.neupims_mw / t.baseline_mw,
        t.speedup,
        t.energy_ratio,
        ((1.0 - t.energy_ratio) * 100.0).round()
    );
    Ok(())
}

fn cmd_area() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## Area overhead of dual row buffers (CACTI-like model, 22 nm)\n");
    println!(
        "dual row buffer area overhead: {:.2}% (paper: 3.11%)",
        area_overhead() * 100.0
    );
    Ok(())
}
