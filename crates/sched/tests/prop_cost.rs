//! Property tests on the MHA cost models: analytic/trace agreement across
//! the Table 3 model configurations, and the regression pin that the
//! analytic model reproduces the legacy estimator cycle-for-cycle.

use std::sync::OnceLock;

use proptest::prelude::*;

use neupims_kvcache::KvGeometry;
use neupims_pim::{calibrate, PimCalibration};
use neupims_sched::{
    calibration_drift, AnalyticCostModel, MhaCostModel, MhaLatencyEstimator, TraceDrivenCostModel,
    TraceMemo, DEFAULT_DRIFT_TOLERANCE,
};
use neupims_types::{LlmConfig, NeuPimsConfig};

fn table2_cal() -> PimCalibration {
    static CAL: OnceLock<PimCalibration> = OnceLock::new();
    *CAL.get_or_init(|| calibrate(&NeuPimsConfig::table2()).unwrap())
}

/// One (analytic, trace) model pair per Table 3 model, built once so the
/// trace replay memo persists across proptest cases.
fn model_pairs() -> &'static Vec<(String, MhaLatencyEstimator, TraceDrivenCostModel)> {
    static PAIRS: OnceLock<Vec<(String, MhaLatencyEstimator, TraceDrivenCostModel)>> =
        OnceLock::new();
    PAIRS.get_or_init(|| {
        let cfg = NeuPimsConfig::table2();
        let cal = table2_cal();
        LlmConfig::table3()
            .into_iter()
            .map(|model| {
                let geo = KvGeometry::for_model(&model, &cfg.mem);
                let analytic = MhaLatencyEstimator::new(geo, cal.l_tile, cal.l_gwrite);
                let trace = TraceDrivenCostModel::new(&cfg, geo, true);
                (model.name.clone(), analytic, trace)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Analytic and trace-driven MHA latencies agree within the documented
    /// tolerance across context lengths 1..16k for every Table 3 model —
    /// the acceptance bar of the trace-driven refactor. (Log-uniform seq
    /// sampling so every octave is exercised, not just the long tail.)
    #[test]
    fn trace_agrees_with_analytic_across_models(
        octave in 0u32..14,
        frac in 0.0f64..1.0,
    ) {
        let seq = ((1u64 << octave) as f64 * (1.0 + frac)) as u64;
        prop_assert!((1..=16_384).contains(&seq));
        for (name, analytic, trace) in model_pairs() {
            let ea = analytic.estimate(seq);
            let et = trace.estimate(seq);
            let rel = (et - ea).abs() / ea.max(1.0);
            prop_assert!(
                rel <= DEFAULT_DRIFT_TOLERANCE,
                "{name} seq {seq}: analytic {ea:.0} vs trace {et:.0} (rel {rel:.3})"
            );
        }
    }

    /// Regression pin: `AnalyticCostModel` (and the trait impl on the
    /// estimator itself) reproduce the legacy `MhaLatencyEstimator`
    /// cycle-for-cycle — bitwise-identical estimates and sums.
    #[test]
    fn analytic_matches_legacy_estimator(
        seqs in prop::collection::vec(0u64..20_000, 1..64),
    ) {
        for (name, est, _) in model_pairs() {
            let wrapped = AnalyticCostModel::new(*est);
            let dyn_est: &dyn MhaCostModel = est;
            for &seq in &seqs {
                let legacy = est.estimate(seq);
                prop_assert_eq!(wrapped.estimate(seq).to_bits(), legacy.to_bits(), "{}", name);
                prop_assert_eq!(dyn_est.estimate(seq).to_bits(), legacy.to_bits(), "{}", name);
            }
            let legacy_sum = est.estimate_sum(&seqs);
            prop_assert_eq!(wrapped.estimate_sum(&seqs).to_bits(), legacy_sum.to_bits(), "{}", name);
        }
    }

    /// Trace-driven estimates are deterministic and monotone across memo
    /// buckets (a longer context never costs less than a shorter one).
    #[test]
    fn trace_is_deterministic_and_monotone(
        a in 1u64..16_384,
        b in 1u64..16_384,
    ) {
        let (_, _, trace) = &model_pairs()[0];
        let (lo, hi) = (a.min(b), a.max(b));
        let c_lo = trace.estimate(lo);
        let c_hi = trace.estimate(hi);
        prop_assert!(c_lo <= c_hi, "seq {lo} -> {c_lo}, seq {hi} -> {c_hi}");
        prop_assert_eq!(trace.estimate(lo).to_bits(), c_lo.to_bits());
    }
}

/// Concurrency stress: 16 threads hammer one shared [`TraceMemo`] over
/// overlapping bucket ranges — every estimate must be bit-identical to a
/// serial replay, and the single-flight counters must land exactly where
/// a serial run puts them (each distinct bucket simulated once, every
/// other lookup a memo hit), no matter how the threads interleave.
#[test]
fn shared_memo_is_bit_identical_under_16_thread_hammering() {
    const THREADS: usize = 16;
    // Overlapping per-thread ranges over a mixed short/long tail, so
    // cold misses on the *same* bucket race constantly.
    let seqs: Vec<u64> = (0..192u64).map(|i| 1 + (i * 131) % 6_000).collect();
    let cfg = NeuPimsConfig::table2();
    let geo = KvGeometry::for_model(&LlmConfig::gpt3_7b(), &cfg.mem);

    // Serial reference on a private memo.
    let serial = TraceDrivenCostModel::new(&cfg, geo, true);
    let expected: Vec<u64> = seqs.iter().map(|&s| serial.estimate(s).to_bits()).collect();
    let serial_snap = serial.snapshot();

    let memo = TraceMemo::new();
    let shared = TraceDrivenCostModel::with_memo(&cfg, geo, true, memo.clone());
    let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let model = shared.clone();
                let seqs = &seqs;
                scope.spawn(move || {
                    // Each thread walks a rotated view of the same range,
                    // so every pair of threads overlaps on most buckets.
                    (0..seqs.len())
                        .map(|i| model.estimate(seqs[(i + t * 11) % seqs.len()]).to_bits())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, bits) in results.iter().enumerate() {
        for (i, &b) in bits.iter().enumerate() {
            let seq = seqs[(i + t * 11) % seqs.len()];
            assert_eq!(
                b,
                expected[(i + t * 11) % seqs.len()],
                "thread {t} diverged from serial replay at seq {seq}"
            );
        }
    }
    let snap = memo.snapshot();
    assert_eq!(
        snap.replays, serial_snap.replays,
        "single flight: each distinct bucket simulates exactly once"
    );
    assert_eq!(
        snap.replays + snap.memo_hits,
        (THREADS * seqs.len()) as u64,
        "every estimate is either the one replay or a memo hit"
    );
    assert_eq!(
        snap.stats, serial_snap.stats,
        "merged channel stats match the serial replay exactly"
    );
}

/// Fixed-grid drift sweep: the shipped tolerance holds on every Table 3
/// model at the canonical probe points (the same grid the `drift` CLI
/// command prints).
#[test]
fn drift_grid_within_default_tolerance() {
    let grid = [
        1u64, 8, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
    ];
    for (name, analytic, trace) in model_pairs() {
        let report = calibration_drift(analytic, trace, &grid, DEFAULT_DRIFT_TOLERANCE);
        assert!(
            report.within_tolerance(),
            "{name}: max drift {:.3} exceeds {DEFAULT_DRIFT_TOLERANCE}",
            report.max_rel_err()
        );
    }
}
