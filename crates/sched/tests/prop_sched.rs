//! Property tests on the scheduling algorithms: bin-packing quality
//! bounds, partition invariants, and pool conservation.

use proptest::prelude::*;

use neupims_kvcache::KvGeometry;
use neupims_sched::{
    assign_min_load, assign_round_robin, channel_loads, partition_sub_batches, MhaLatencyEstimator,
    RequestPool,
};
use neupims_types::{LlmConfig, MemConfig, Request, RequestId};

fn estimator() -> MhaLatencyEstimator {
    let geo = KvGeometry::for_model(&LlmConfig::gpt3_7b(), &MemConfig::table2());
    MhaLatencyEstimator::new(geo, 280.0, 50.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy min-load (LPT) never produces a worse max-load than
    /// round-robin, and stays within the classical LPT bound of optimal:
    /// max_load <= avg_load + max_item (a safe relaxation of 4/3 OPT).
    #[test]
    fn min_load_quality_bounds(
        seqs in prop::collection::vec(1u64..4096, 1..200),
        channels in 1u32..33,
    ) {
        let e = estimator();
        let greedy = assign_min_load(&seqs, channels, &e);
        let rr = assign_round_robin(&seqs, channels);
        let max = |a: &[neupims_types::ChannelId]| {
            channel_loads(&seqs, a, channels, &e)
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        let g = max(&greedy);
        let r = max(&rr);
        prop_assert!(g <= r + 1e-6, "greedy {g} worse than round-robin {r}");

        let total: f64 = seqs.iter().map(|&s| e.estimate(s)).sum();
        let avg = total / channels as f64;
        let biggest = seqs.iter().map(|&s| e.estimate(s)).fold(0.0, f64::max);
        prop_assert!(g <= avg + biggest + 1e-6, "LPT bound violated: {g} > {avg} + {biggest}");
    }

    /// Every request lands on exactly one channel, in range.
    #[test]
    fn assignment_is_total_and_in_range(
        seqs in prop::collection::vec(1u64..9000, 0..150),
        channels in 1u32..64,
    ) {
        let e = estimator();
        for assign in [assign_min_load(&seqs, channels, &e), assign_round_robin(&seqs, channels)] {
            prop_assert_eq!(assign.len(), seqs.len());
            prop_assert!(assign.iter().all(|c| c.0 < channels));
        }
    }

    /// Algorithm 3: no request lost or duplicated; per-channel split sizes
    /// differ by at most one; global sizes differ by at most one.
    #[test]
    fn partition_invariants(
        sizes in prop::collection::vec(0usize..12, 1..40),
    ) {
        let mut next = 0u32;
        let mut chans = Vec::new();
        for len in &sizes {
            let ids: Vec<RequestId> = (next..next + *len as u32).map(RequestId::new).collect();
            next += *len as u32;
            chans.push(ids);
        }
        let sb = partition_sub_batches(&chans);
        // Conservation.
        let mut all: Vec<u32> = sb.sb1.iter().chain(&sb.sb2).map(|r| r.0).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..next).collect::<Vec<_>>());
        // Global balance.
        prop_assert!(sb.sb1.len().abs_diff(sb.sb2.len()) <= 1);
        // Per-channel balance.
        let mut start = 0u32;
        for len in &sizes {
            let end = start + *len as u32;
            let in1 = sb.sb1.iter().filter(|r| r.0 >= start && r.0 < end).count();
            let in2 = *len - in1;
            prop_assert!(in1.abs_diff(in2) <= 1, "channel [{start},{end}): {in1}/{in2}");
            start = end;
        }
    }

    /// Algorithm 3 + Algorithm 1 together: partitioning loses no load —
    /// the two sub-batches' estimated MHA loads sum exactly to the whole
    /// batch's estimate (request-level conservation lifted through the
    /// estimator), and no request is lost or duplicated.
    #[test]
    fn partition_conserves_estimated_load(
        chans in prop::collection::vec(
            prop::collection::vec(1u64..8192, 0..10),
            1..24,
        ),
    ) {
        let e = estimator();
        // Assign globally unique ids per channel slot; remember each id's
        // sequence length.
        let mut next = 0u32;
        let mut seq_of = std::collections::HashMap::new();
        let per_channel: Vec<Vec<RequestId>> = chans
            .iter()
            .map(|seqs| {
                seqs.iter()
                    .map(|&s| {
                        let id = RequestId::new(next);
                        next += 1;
                        seq_of.insert(id, s);
                        id
                    })
                    .collect()
            })
            .collect();
        let sb = partition_sub_batches(&per_channel);
        prop_assert_eq!(sb.len() as u32, next, "no request lost or duplicated");
        let load = |ids: &[RequestId]| -> f64 {
            ids.iter().map(|id| e.estimate(seq_of[id])).sum()
        };
        let total: f64 = chans.iter().flatten().map(|&s| e.estimate(s)).sum();
        let split = load(&sb.sb1) + load(&sb.sb2);
        prop_assert!(
            (split - total).abs() <= total.abs() * 1e-12 + 1e-6,
            "load conservation: {split} vs {total}"
        );
    }

    /// With uniform sequence lengths, Algorithm 3's odd-channel
    /// alternation keeps the two sub-batch loads within one request's
    /// estimate of perfectly balanced — the "within estimator bound of
    /// balanced" guarantee the interleaver relies on.
    #[test]
    fn partition_is_balanced_within_one_estimate_for_uniform_seqs(
        sizes in prop::collection::vec(0usize..11, 1..32),
        seq in 1u64..8192,
    ) {
        let e = estimator();
        let mut next = 0u32;
        let per_channel: Vec<Vec<RequestId>> = sizes
            .iter()
            .map(|&len| {
                let ids = (next..next + len as u32).map(RequestId::new).collect();
                next += len as u32;
                ids
            })
            .collect();
        let sb = partition_sub_batches(&per_channel);
        let one = e.estimate(seq);
        let (l1, l2) = (sb.sb1.len() as f64 * one, sb.sb2.len() as f64 * one);
        prop_assert!(
            (l1 - l2).abs() <= one + 1e-9,
            "|{l1} - {l2}| exceeds one request's estimate {one}"
        );
    }

    /// Algorithm 1's estimate is monotone in context length and strictly
    /// positive, and `estimate_sum` is permutation-invariant — the
    /// properties that make it a sound load signal for balancing.
    #[test]
    fn estimator_is_monotone_and_permutation_invariant(
        seqs in prop::collection::vec(0u64..16384, 1..64),
        a in 0u64..16384,
        b in 0u64..16384,
    ) {
        let e = estimator();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(e.estimate(lo) <= e.estimate(hi), "monotonicity at ({lo}, {hi})");
        prop_assert!(e.estimate(a) > 0.0, "GWRITE floor keeps estimates positive");
        let forward = e.estimate_sum(&seqs);
        let reversed: Vec<u64> = seqs.iter().rev().copied().collect();
        let backward = e.estimate_sum(&reversed);
        prop_assert!((forward - backward).abs() <= forward.abs() * 1e-12 + 1e-9);
    }

    /// The request pool conserves requests through arbitrary admit/complete
    /// interleavings and never exceeds its batch cap.
    #[test]
    fn pool_conserves_requests(
        requests in prop::collection::vec((1u32..64, 1u32..12), 1..60),
        max_batch in 1usize..16,
    ) {
        let mut pool = RequestPool::new(max_batch);
        let total = requests.len() as u64;
        let expected_tokens: u64 = requests.iter().map(|&(_, o)| o as u64).sum();
        for (i, (input, output)) in requests.into_iter().enumerate() {
            pool.submit(Request::new(RequestId::new(i as u32), input, output, 0));
        }
        let mut guard = 0;
        while pool.completed() < total {
            pool.admit(0, |_| true);
            prop_assert!(pool.running().len() <= max_batch);
            if pool.running().is_empty() {
                break;
            }
            pool.complete_iteration();
            guard += 1;
            prop_assert!(guard < 10_000, "no forward progress");
        }
        prop_assert_eq!(pool.completed(), total);
        prop_assert_eq!(pool.tokens_generated(), expected_tokens);
        prop_assert_eq!(pool.waiting_len(), 0);
    }
}
