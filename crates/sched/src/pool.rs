//! The request pool table with Orca-style iteration-level scheduling.
//!
//! Requests arrive in a streaming fashion and wait in the pool (Figure 7).
//! At every iteration boundary the scheduler admits waiting requests into
//! the running batch (subject to a batch-size cap and a caller-supplied
//! admission check, e.g. KV-cache capacity) and retires finished ones —
//! Orca's iteration-level scheduling, which NeuPIMs builds on.

use std::collections::VecDeque;

use neupims_types::{Cycle, Request, RequestId, RequestState, SimError};

/// Request pool table: waiting queue plus the running batch.
#[derive(Debug, Clone, Default)]
pub struct RequestPool {
    waiting: VecDeque<Request>,
    running: Vec<Request>,
    max_batch: usize,
    completed: u64,
    tokens_generated: u64,
}

impl RequestPool {
    /// Creates a pool whose running batch holds at most `max_batch`
    /// requests.
    pub fn new(max_batch: usize) -> Self {
        Self {
            max_batch,
            ..Self::default()
        }
    }

    /// Submits a new request to the waiting queue.
    pub fn submit(&mut self, req: Request) {
        self.waiting.push_back(req);
    }

    /// Requests currently in the running batch.
    pub fn running(&self) -> &[Request] {
        &self.running
    }

    /// Number of requests waiting for admission.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Completed requests since construction.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Tokens generated since construction (the throughput numerator).
    pub fn tokens_generated(&self) -> u64 {
        self.tokens_generated
    }

    /// Requests waiting for admission, in FCFS order.
    pub fn waiting(&self) -> impl Iterator<Item = &Request> {
        self.waiting.iter()
    }

    /// Tokens still to be generated across the waiting queue and the
    /// running batch — the pool's outstanding work (dispatch policies use
    /// it as a load signal).
    pub fn outstanding_tokens(&self) -> u64 {
        self.waiting
            .iter()
            .chain(&self.running)
            .map(|r| r.remaining() as u64)
            .sum()
    }

    /// Removes and returns the head of the waiting queue without running
    /// it. Serving frontends use this to drop a request that can never be
    /// admitted (e.g. its context exceeds an empty KV channel) instead of
    /// letting it block the queue forever.
    ///
    /// FIFO guarantee: the head is always the *earliest-submitted* request
    /// still waiting — the same request [`Self::admit`] would consider
    /// first — so dropping it never reorders the queue behind it.
    pub fn drop_head_waiting(&mut self) -> Option<Request> {
        self.waiting.pop_front()
    }

    /// Current context lengths of the running batch, index-aligned with
    /// [`Self::running`].
    pub fn seq_lens(&self) -> Vec<u64> {
        self.running.iter().map(|r| r.seq_len() as u64).collect()
    }

    /// Iteration boundary, part 1: admit waiting requests (FCFS) while the
    /// batch has room and `admission` approves (e.g. reserves KV pages).
    /// Requests arriving after `now` stay queued.
    ///
    /// FIFO guarantees:
    ///
    /// * candidates are considered strictly in **submission order** (the
    ///   order of [`Self::submit`] calls, *not* arrival-time order — a
    ///   caller submitting out of arrival order keeps its own order);
    /// * admission never skips the head: if the head is refused by
    ///   `admission` (or hasn't arrived), nothing behind it is admitted
    ///   this boundary (head-of-line blocking mirrors FCFS serving);
    /// * the returned ids preserve that same order, and requests enter
    ///   [`Self::running`] in it.
    ///
    /// Returns the ids admitted this boundary.
    pub fn admit(
        &mut self,
        now: Cycle,
        mut admission: impl FnMut(&Request) -> bool,
    ) -> Vec<RequestId> {
        let mut admitted = Vec::new();
        while self.running.len() < self.max_batch {
            match self.waiting.front() {
                Some(req) if req.arrival <= now => {
                    if !admission(req) {
                        break; // head-of-line blocking mirrors FCFS serving
                    }
                    let mut req = self.waiting.pop_front().expect("peeked");
                    req.state = RequestState::Running;
                    admitted.push(req.id);
                    self.running.push(req);
                }
                _ => break,
            }
        }
        admitted
    }

    /// Iteration boundary, part 2: record one generated token per running
    /// request and retire the finished ones.
    ///
    /// Returns the retired requests (callers release their KV pages).
    pub fn complete_iteration(&mut self) -> Vec<Request> {
        self.complete_iteration_where(|_| true)
    }

    /// Like [`Self::complete_iteration`], but only requests for which
    /// `participated` returns `true` advance (and can retire). Serving
    /// frontends use this to keep admitted-but-still-prefilling requests
    /// from generating tokens before their prefill delay has elapsed.
    pub fn complete_iteration_where(
        &mut self,
        mut participated: impl FnMut(&Request) -> bool,
    ) -> Vec<Request> {
        for req in &mut self.running {
            if participated(req) {
                req.advance();
                self.tokens_generated += 1;
            }
        }
        let (done, keep): (Vec<Request>, Vec<Request>) = std::mem::take(&mut self.running)
            .into_iter()
            .partition(|r| r.is_finished());
        self.running = keep;
        self.completed += done.len() as u64;
        done
    }

    /// Removes `id` from the running batch without retiring it, returning
    /// the request (generation progress intact) so a serving frontend can
    /// park it in a preempted queue. The request counts neither as
    /// completed nor as a generated-token event; [`Self::resume`] puts it
    /// back.
    ///
    /// Returns `None` when `id` is not running.
    pub fn preempt_running(&mut self, id: RequestId) -> Option<Request> {
        let pos = self.running.iter().position(|r| r.id == id)?;
        let mut req = self.running.remove(pos);
        req.state = RequestState::Waiting;
        Some(req)
    }

    /// Re-inserts a previously [preempted](Self::preempt_running) request
    /// at the back of the running batch. Returns `false` (and leaves the
    /// pool untouched) when the batch is at its cap — the caller keeps the
    /// request parked and retries at a later boundary.
    pub fn resume(&mut self, mut req: Request) -> bool {
        if self.running.len() >= self.max_batch {
            return false;
        }
        req.state = RequestState::Running;
        self.running.push(req);
        true
    }

    /// Looks up a running request.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownRequest`] if `id` is not running.
    pub fn get_running(&self, id: RequestId) -> Result<&Request, SimError> {
        self.running
            .iter()
            .find(|r| r.id == id)
            .ok_or(SimError::UnknownRequest(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u32, input: u32, output: u32, arrival: Cycle) -> Request {
        Request::new(RequestId::new(id), input, output, arrival)
    }

    #[test]
    fn admits_up_to_batch_cap() {
        let mut pool = RequestPool::new(2);
        for i in 0..5 {
            pool.submit(req(i, 10, 5, 0));
        }
        let admitted = pool.admit(0, |_| true);
        assert_eq!(admitted.len(), 2);
        assert_eq!(pool.running().len(), 2);
        assert_eq!(pool.waiting_len(), 3);
    }

    #[test]
    fn admission_respects_arrival_time() {
        let mut pool = RequestPool::new(8);
        pool.submit(req(0, 10, 5, 0));
        pool.submit(req(1, 10, 5, 1_000));
        let admitted = pool.admit(10, |_| true);
        assert_eq!(admitted.len(), 1, "future arrivals must wait");
    }

    #[test]
    fn admission_callback_blocks() {
        let mut pool = RequestPool::new(8);
        pool.submit(req(0, 10, 5, 0));
        pool.submit(req(1, 10, 5, 0));
        // Admit nothing: capacity checker refuses.
        let admitted = pool.admit(0, |_| false);
        assert!(admitted.is_empty());
        assert_eq!(pool.waiting_len(), 2);
    }

    #[test]
    fn iteration_level_scheduling_rotates_requests() {
        // Orca's key property: finished requests leave at iteration
        // boundaries and newly arrived ones take their place immediately.
        let mut pool = RequestPool::new(2);
        pool.submit(req(0, 4, 1, 0)); // finishes after 1 iteration
        pool.submit(req(1, 4, 3, 0));
        pool.submit(req(2, 4, 2, 0)); // waits for a slot
        pool.admit(0, |_| true);
        assert_eq!(pool.running().len(), 2);

        let done = pool.complete_iteration();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, RequestId::new(0));

        let admitted = pool.admit(1, |_| true);
        assert_eq!(admitted, vec![RequestId::new(2)]);
        assert_eq!(pool.running().len(), 2);

        // Two more iterations finish everything: after the second, req 1
        // has its 3rd token and req 2 its 2nd.
        assert_eq!(pool.complete_iteration().len(), 0);
        assert_eq!(pool.complete_iteration().len(), 2);
        assert_eq!(pool.completed(), 3);
        assert!(pool.running().is_empty());
    }

    #[test]
    fn token_accounting() {
        let mut pool = RequestPool::new(4);
        pool.submit(req(0, 8, 2, 0));
        pool.submit(req(1, 8, 3, 0));
        pool.admit(0, |_| true);
        pool.complete_iteration();
        pool.complete_iteration();
        pool.complete_iteration();
        assert_eq!(pool.tokens_generated(), 2 + 3);
        assert_eq!(pool.completed(), 2);
        assert!(pool.running().is_empty());
    }

    #[test]
    fn seq_lens_track_generation() {
        let mut pool = RequestPool::new(4);
        pool.submit(req(0, 10, 5, 0));
        pool.admit(0, |_| true);
        assert_eq!(pool.seq_lens(), vec![10]);
        pool.complete_iteration();
        assert_eq!(pool.seq_lens(), vec![11]);
    }

    #[test]
    fn filtered_completion_advances_only_participants() {
        let mut pool = RequestPool::new(4);
        pool.submit(req(0, 8, 1, 0));
        pool.submit(req(1, 8, 2, 0));
        pool.admit(0, |_| true);
        // Only request 1 participates: request 0 must not advance or retire.
        let done = pool.complete_iteration_where(|r| r.id == RequestId::new(1));
        assert!(done.is_empty());
        assert_eq!(pool.tokens_generated(), 1);
        assert_eq!(pool.seq_lens(), vec![8, 9]);
        // Now both participate; both finish.
        let done = pool.complete_iteration();
        assert_eq!(done.len(), 2);
        assert_eq!(pool.completed(), 2);
    }

    #[test]
    fn drop_head_and_outstanding_tokens() {
        let mut pool = RequestPool::new(1);
        pool.submit(req(0, 8, 3, 0));
        pool.submit(req(1, 8, 5, 0));
        pool.admit(0, |_| true);
        assert_eq!(pool.outstanding_tokens(), 8, "3 running + 5 waiting");
        let dropped = pool.drop_head_waiting().unwrap();
        assert_eq!(dropped.id, RequestId::new(1));
        assert_eq!(pool.waiting_len(), 0);
        assert_eq!(pool.outstanding_tokens(), 3);
        assert!(pool.drop_head_waiting().is_none());
        assert_eq!(pool.waiting().count(), 0);
    }

    #[test]
    fn fifo_ordering_is_pinned() {
        // Pins the documented guarantees of `admit` and
        // `drop_head_waiting`: submission order rules, the head is never
        // skipped, and drops take the earliest-submitted waiter.
        let mut pool = RequestPool::new(2);
        // Submit out of id order and out of arrival order: submission
        // order (7, 3, 9, 1) is what must be preserved.
        pool.submit(req(7, 8, 2, 0));
        pool.submit(req(3, 8, 2, 5)); // arrives later than those behind it
        pool.submit(req(9, 8, 2, 0));
        pool.submit(req(1, 8, 2, 0));

        // At now=0 the head (7) is admittable, but 3 hasn't arrived:
        // nothing behind 3 may leapfrog it.
        let admitted = pool.admit(0, |_| true);
        assert_eq!(admitted, vec![RequestId::new(7)]);

        // Once 3 arrives, admission resumes in submission order up to cap.
        let admitted = pool.admit(5, |_| true);
        assert_eq!(admitted, vec![RequestId::new(3)]);
        let running: Vec<u32> = pool.running().iter().map(|r| r.id.0).collect();
        assert_eq!(running, vec![7, 3], "running batch keeps admission order");

        // An admission refusal of the head blocks everything behind it.
        pool.complete_iteration();
        pool.complete_iteration(); // 7 and 3 retire
        let admitted = pool.admit(5, |r| r.id != RequestId::new(9));
        assert!(admitted.is_empty(), "refused head must not be skipped");

        // drop_head_waiting removes exactly the earliest-submitted waiter.
        assert_eq!(pool.drop_head_waiting().unwrap().id, RequestId::new(9));
        assert_eq!(pool.admit(5, |_| true), vec![RequestId::new(1)]);
    }

    #[test]
    fn preempt_and_resume_preserve_progress_and_cap() {
        let mut pool = RequestPool::new(2);
        pool.submit(req(0, 8, 4, 0));
        pool.submit(req(1, 8, 4, 0));
        pool.submit(req(2, 8, 4, 0)); // queued behind the cap
        pool.admit(0, |_| true);
        pool.complete_iteration(); // both running requests have 1 token

        let victim = pool.preempt_running(RequestId::new(1)).unwrap();
        assert_eq!(victim.generated, 1, "progress rides along");
        assert_eq!(victim.state, RequestState::Waiting);
        assert_eq!(pool.running().len(), 1);
        assert_eq!(pool.completed(), 0, "preemption is not completion");
        assert_eq!(pool.tokens_generated(), 2, "earned tokens are kept");
        assert!(pool.preempt_running(RequestId::new(1)).is_none());

        // The freed slot admits the queued request; the batch is full
        // again, so resume must refuse rather than overshoot the cap.
        pool.admit(0, |_| true);
        assert_eq!(pool.running().len(), 2);
        assert!(!pool.resume(victim.clone()), "cap must hold");

        // After a slot frees, resume re-enters with progress intact.
        pool.complete_iteration();
        pool.complete_iteration();
        pool.complete_iteration();
        pool.complete_iteration(); // requests 0 and 2 retire
        assert!(pool.resume(victim));
        let r = pool.get_running(RequestId::new(1)).unwrap();
        assert_eq!(r.generated, 1);
        assert_eq!(r.state, RequestState::Running);
        // Outstanding work counts the resumed request's remaining tokens.
        assert_eq!(pool.outstanding_tokens(), 3);
    }

    #[test]
    fn get_running_errors_on_unknown() {
        let pool = RequestPool::new(1);
        assert!(matches!(
            pool.get_running(RequestId::new(42)),
            Err(SimError::UnknownRequest(_))
        ));
    }
}
