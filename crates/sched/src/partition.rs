//! Algorithm 3: sub-batch partitioning.
//!
//! Sub-batch interleaving runs two independent sub-batches through the
//! device so one's GEMMs overlap the other's MHA. NPU-side cost depends on
//! sub-batch size, so the split must be even; MHA cost depends on
//! per-channel loads, so the split must be even *per channel*. Algorithm 3
//! halves each channel's request list, alternating which sub-batch receives
//! the odd element (`turn` flips per odd-sized channel).

use neupims_types::RequestId;

/// The two sub-batches produced by Algorithm 3 (request ids per sub-batch).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubBatches {
    /// First sub-batch.
    pub sb1: Vec<RequestId>,
    /// Second sub-batch.
    pub sb2: Vec<RequestId>,
}

impl SubBatches {
    /// Total requests across both sub-batches.
    pub fn len(&self) -> usize {
        self.sb1.len() + self.sb2.len()
    }

    /// True when both sub-batches are empty.
    pub fn is_empty(&self) -> bool {
        self.sb1.is_empty() && self.sb2.is_empty()
    }
}

/// Splits each channel's request list into two near-equal halves
/// (Algorithm 3). `per_channel` holds the request ids resident on each
/// channel, in any order.
pub fn partition_sub_batches(per_channel: &[Vec<RequestId>]) -> SubBatches {
    let mut turn = true;
    let mut out = SubBatches::default();
    for chnl in per_channel {
        let mut bsize = chnl.len() / 2;
        if chnl.len() % 2 != 0 {
            // `turn` alternates who gets the odd request: ceil vs floor.
            if turn {
                bsize = chnl.len().div_ceil(2);
            }
            turn = !turn;
        }
        out.sb1.extend_from_slice(&chnl[..bsize]);
        out.sb2.extend_from_slice(&chnl[bsize..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u32>) -> Vec<RequestId> {
        range.map(RequestId::new).collect()
    }

    #[test]
    fn even_channels_split_exactly() {
        let chans = vec![ids(0..4), ids(4..10)];
        let sb = partition_sub_batches(&chans);
        assert_eq!(sb.sb1.len(), 2 + 3);
        assert_eq!(sb.sb2.len(), 2 + 3);
    }

    #[test]
    fn odd_channels_alternate_the_extra() {
        // Four channels of 3 requests: the extra one alternates, keeping
        // the global split exactly even.
        let chans = vec![ids(0..3), ids(3..6), ids(6..9), ids(9..12)];
        let sb = partition_sub_batches(&chans);
        assert_eq!(sb.sb1.len(), 6);
        assert_eq!(sb.sb2.len(), 6);
        // Per channel, sizes differ by at most one.
        // (channel 0 gives 2+1, channel 1 gives 1+2, ...)
    }

    #[test]
    fn per_channel_difference_at_most_one() {
        let chans = vec![ids(0..7), ids(7..8), ids(8..13)];
        let sb = partition_sub_batches(&chans);
        // Reconstruct per-channel counts.
        for (start, len) in [(0u32, 7usize), (7, 1), (8, 5)] {
            let in1 = sb
                .sb1
                .iter()
                .filter(|r| r.0 >= start && r.0 < start + len as u32)
                .count();
            let in2 = len - in1;
            assert!(in1.abs_diff(in2) <= 1, "channel at {start}: {in1} vs {in2}");
        }
    }

    #[test]
    fn no_request_lost_or_duplicated() {
        let chans = vec![ids(0..5), ids(5..5), ids(5..14), ids(14..15)];
        let sb = partition_sub_batches(&chans);
        let mut all: Vec<u32> = sb.sb1.iter().chain(&sb.sb2).map(|r| r.0).collect();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let sb = partition_sub_batches(&[]);
        assert!(sb.is_empty());
        assert_eq!(sb.len(), 0);
    }

    #[test]
    fn global_balance_within_one_for_random_shapes() {
        // Many odd channels: alternation keeps |SB1| - |SB2| <= 1.
        let mut chans = Vec::new();
        let mut next = 0u32;
        for len in [3u32, 5, 1, 7, 9, 1, 3, 5] {
            chans.push(ids(next..next + len));
            next += len;
        }
        let sb = partition_sub_batches(&chans);
        assert!(sb.sb1.len().abs_diff(sb.sb2.len()) <= 1);
        assert_eq!(sb.len() as u32, next);
    }
}
