//! Algorithm 2: greedy min-load bin packing of requests onto PIM channels.
//!
//! The MHA latency of an iteration is set by the most loaded channel, so
//! the scheduler balances the estimated per-channel loads: requests are
//! sorted by descending context length and each goes to the currently
//! least-loaded channel (longest-processing-time-first scheduling). The
//! round-robin policy of the naive NPU+PIM baseline is provided for the
//! ablation.

use neupims_types::ChannelId;

use crate::cost::MhaCostModel;

/// Assigns each request (by context length) to a channel, greedily
/// minimizing the maximum estimated channel load (Algorithm 2).
///
/// Generic over [`MhaCostModel`], so the balance target can be the
/// Algorithm 1 closed form ([`MhaLatencyEstimator`](crate::estimator::MhaLatencyEstimator)
/// implements the trait directly) or the trace-driven cycle model.
///
/// Returns one [`ChannelId`] per input request, index-aligned.
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn assign_min_load<C: MhaCostModel + ?Sized>(
    seq_lens: &[u64],
    channels: u32,
    estimator: &C,
) -> Vec<ChannelId> {
    assert!(channels > 0, "at least one channel required");
    let mut loads = vec![0.0f64; channels as usize];
    // Sort indices by descending length (LPT order).
    let mut order: Vec<usize> = (0..seq_lens.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(seq_lens[i]));

    let mut assignment = vec![ChannelId::new(0); seq_lens.len()];
    for &i in &order {
        let (min_idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .expect("non-empty loads");
        assignment[i] = ChannelId::new(min_idx as u32);
        loads[min_idx] += estimator.estimate(seq_lens[i]);
    }
    assignment
}

/// Round-robin channel assignment (the naive NPU+PIM baseline policy).
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn assign_round_robin(seq_lens: &[u64], channels: u32) -> Vec<ChannelId> {
    assert!(channels > 0, "at least one channel required");
    (0..seq_lens.len())
        .map(|i| ChannelId::new((i as u32) % channels))
        .collect()
}

/// Estimated per-channel loads induced by an assignment.
pub fn channel_loads<C: MhaCostModel + ?Sized>(
    seq_lens: &[u64],
    assignment: &[ChannelId],
    channels: u32,
    estimator: &C,
) -> Vec<f64> {
    let mut loads = vec![0.0f64; channels as usize];
    for (&seq, &ch) in seq_lens.iter().zip(assignment) {
        loads[ch.index()] += estimator.estimate(seq);
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::MhaLatencyEstimator;
    use neupims_kvcache::KvGeometry;
    use neupims_types::{LlmConfig, MemConfig};

    fn estimator() -> MhaLatencyEstimator {
        let geo = KvGeometry::for_model(&LlmConfig::gpt3_7b(), &MemConfig::table2());
        MhaLatencyEstimator::new(geo, 280.0, 50.0)
    }

    fn max_load(seqs: &[u64], assign: &[ChannelId], chans: u32) -> f64 {
        channel_loads(seqs, assign, chans, &estimator())
            .into_iter()
            .fold(0.0, f64::max)
    }

    #[test]
    fn all_requests_assigned_in_range() {
        let seqs: Vec<u64> = (1..100).map(|i| (i * 37) % 900 + 1).collect();
        let a = assign_min_load(&seqs, 8, &estimator());
        assert_eq!(a.len(), seqs.len());
        assert!(a.iter().all(|c| c.0 < 8));
    }

    #[test]
    fn min_load_beats_round_robin_on_skewed_input() {
        // Skewed lengths: a few giants among many small requests.
        let mut seqs = vec![2048u64, 1900, 1800, 1700];
        seqs.extend(std::iter::repeat_n(32u64, 60));
        let e = estimator();
        let greedy = assign_min_load(&seqs, 8, &e);
        let rr = assign_round_robin(&seqs, 8);
        let g = max_load(&seqs, &greedy, 8);
        let r = max_load(&seqs, &rr, 8);
        assert!(g <= r, "greedy {g} must not exceed round-robin {r}");
        assert!(g < 0.8 * r, "expected clear win on skew: {g} vs {r}");
    }

    #[test]
    fn greedy_is_near_optimal_on_uniform_input() {
        let seqs = vec![128u64; 64];
        let e = estimator();
        let a = assign_min_load(&seqs, 8, &e);
        let loads = channel_loads(&seqs, &a, 8, &e);
        let (min, max) = loads
            .iter()
            .fold((f64::MAX, 0.0f64), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        assert!((max - min) < 1e-9, "uniform input must balance exactly");
    }

    #[test]
    fn round_robin_cycles_channels() {
        let a = assign_round_robin(&[1, 2, 3, 4, 5], 2);
        let raw: Vec<u32> = a.iter().map(|c| c.0).collect();
        assert_eq!(raw, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        assign_min_load(&[1], 0, &estimator());
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(assign_min_load(&[], 4, &estimator()).is_empty());
        assert!(assign_round_robin(&[], 4).is_empty());
    }
}
