//! NeuPIMs scheduling: Algorithms 1–3 plus iteration-level serving.
//!
//! The paper's algorithmic contribution is a three-piece scheduler:
//!
//! * [`estimator::MhaLatencyEstimator`] — **Algorithm 1**: estimates a
//!   request's MHA latency on the PIM from its context length and the K/V
//!   memory layout (`L_GWRITE`, `L_tile` calibrated from the cycle model);
//! * [`cost`] — the [`MhaCostModel`] trait unifying MHA pricing: the
//!   Algorithm 1 closed form ([`AnalyticCostModel`]) and a trace-driven
//!   cycle-level model ([`TraceDrivenCostModel`]) that replays the real
//!   GEMV command streams through `neupims-dram`, plus the
//!   [`calibration_drift`] check between them;
//! * [`binpack`] — **Algorithm 2**: greedy min-load bin packing of requests
//!   onto PIM channels, balancing the per-channel MHA latency (the paper's
//!   GMLBP ablation knob), plus the round-robin baseline policy;
//! * [`partition`] — **Algorithm 3**: splitting each channel's requests
//!   into two sub-batches of near-equal size for interleaved execution;
//! * [`pool::RequestPool`] — the request pool table of Figure 7 with
//!   Orca-style iteration-level scheduling: requests join and leave the
//!   running batch only at iteration boundaries.
//!
//! # Example
//!
//! ```
//! use neupims_kvcache::KvGeometry;
//! use neupims_sched::{assign_min_load, MhaLatencyEstimator};
//! use neupims_types::{LlmConfig, MemConfig};
//!
//! let geo = KvGeometry::for_model(&LlmConfig::gpt3_7b(), &MemConfig::table2());
//! let est = MhaLatencyEstimator::new(geo, 280.0, 50.0);
//! let seqs = vec![900, 40, 700, 100, 50, 300];
//! let assignment = assign_min_load(&seqs, 4, &est);
//! assert_eq!(assignment.len(), seqs.len());
//! ```

#![warn(missing_docs)]

pub mod binpack;
pub mod cost;
pub mod estimator;
pub mod partition;
pub mod pool;

pub use binpack::{assign_min_load, assign_round_robin, channel_loads};
pub use cost::{
    calibration_drift, AnalyticCostModel, CostModelKind, DriftPoint, DriftReport, MhaCostModel,
    TraceDrivenCostModel, TraceMemo, TraceSnapshot, COST_MODEL_NAMES, DEFAULT_DRIFT_TOLERANCE,
};
pub use estimator::MhaLatencyEstimator;
pub use partition::{partition_sub_batches, SubBatches};
pub use pool::RequestPool;
