//! Algorithm 1: MHA latency estimation.
//!
//! The estimator reproduces the paper's pseudocode line by line, with the
//! tile and GWRITE counts supplied by the Section 6.3 layout
//! ([`KvGeometry`]) and the per-unit latencies (`L_tile`, `L_GWRITE`)
//! calibrated from the cycle model:
//!
//! ```text
//! // GEMV latency for Keyᵀ x Query
//! N_tiles  = (seq_len / B_chnl) * (E / P_DRAM)
//! L_MHA   += L_GWRITE * (E / P_DRAM)
//! L_MHA   += L_tile * N_tiles
//! // GEMV latency for Logits x Value
//! N_tiles  = ((E / N_head) / B_chnl) * ((seq_len / P_DRAM) * N_head)
//! L_MHA   += L_GWRITE * ((seq_len / P_DRAM) * N_head)
//! L_MHA   += L_tile * N_tiles
//! ```

use neupims_kvcache::KvGeometry;

/// Estimates per-request MHA latency on a PIM channel (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MhaLatencyEstimator {
    geometry: KvGeometry,
    l_tile: f64,
    l_gwrite: f64,
}

impl MhaLatencyEstimator {
    /// Builds the estimator from layout geometry and calibrated latencies.
    pub fn new(geometry: KvGeometry, l_tile: f64, l_gwrite: f64) -> Self {
        Self {
            geometry,
            l_tile,
            l_gwrite,
        }
    }

    /// The layout geometry in use.
    pub fn geometry(&self) -> &KvGeometry {
        &self.geometry
    }

    /// Calibrated cycles per PIM tile.
    pub fn l_tile(&self) -> f64 {
        self.l_tile
    }

    /// Calibrated cycles per GWRITE.
    pub fn l_gwrite(&self) -> f64 {
        self.l_gwrite
    }

    /// Estimated MHA latency (cycles) of one request with `seq_len` tokens
    /// of context, per decoder layer.
    pub fn estimate(&self, seq_len: u64) -> f64 {
        let g = &self.geometry;
        // Keyᵀ x Query.
        let mut l = self.l_gwrite * g.logit_gwrites() as f64;
        l += self.l_tile * g.logit_tiles(seq_len) as f64;
        // Logits x Value.
        l += self.l_gwrite * g.attend_gwrites(seq_len) as f64;
        l += self.l_tile * g.attend_tiles(seq_len) as f64;
        l
    }

    /// Estimated total load (cycles) of a set of co-located requests.
    pub fn estimate_sum(&self, seq_lens: &[u64]) -> f64 {
        seq_lens.iter().map(|&s| self.estimate(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neupims_types::{LlmConfig, MemConfig};

    fn estimator() -> MhaLatencyEstimator {
        let geo = KvGeometry::for_model(&LlmConfig::gpt3_7b(), &MemConfig::table2());
        MhaLatencyEstimator::new(geo, 280.0, 50.0)
    }

    #[test]
    fn estimate_is_monotone_in_seq_len() {
        let e = estimator();
        let mut prev = 0.0;
        for seq in [1u64, 32, 64, 128, 512, 513, 2048] {
            let est = e.estimate(seq);
            assert!(est >= prev, "seq {seq}: {est} < {prev}");
            prev = est;
        }
    }

    #[test]
    fn estimate_matches_formula() {
        let e = estimator();
        let g = e.geometry();
        let seq = 300;
        let expect = 50.0 * (g.logit_gwrites() + g.attend_gwrites(seq)) as f64
            + 280.0 * (g.logit_tiles(seq) + g.attend_tiles(seq)) as f64;
        assert!((e.estimate(seq) - expect).abs() < 1e-9);
    }

    #[test]
    fn sum_is_additive() {
        let e = estimator();
        let sum = e.estimate_sum(&[100, 200, 300]);
        let direct = e.estimate(100) + e.estimate(200) + e.estimate(300);
        assert!((sum - direct).abs() < 1e-9);
    }

    #[test]
    fn zero_context_costs_only_fixed_gwrites() {
        let e = estimator();
        // seq = 0: no tiles, only the query GWRITE term.
        let est = e.estimate(0);
        assert!((est - 50.0 * e.geometry().logit_gwrites() as f64).abs() < 1e-9);
    }
}
