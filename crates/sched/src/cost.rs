//! MHA cost models: the Algorithm 1 closed form and a trace-driven
//! cycle-level alternative behind one trait.
//!
//! Algorithm 1 ([`MhaLatencyEstimator`]) is an *approximation* of what the
//! dual-row-buffer PIM channel actually does: it charges a calibrated
//! `L_tile` per grouped-activation round and `L_GWRITE` per vector page
//! load, ignoring partial-width tiles, refresh interference, ramp-up, and
//! result readback. The cycle model in `neupims-dram` knows all of those.
//! [`MhaCostModel`] abstracts over both:
//!
//! * [`AnalyticCostModel`] wraps the existing estimator bit-for-bit — the
//!   default, and what the paper's scheduler runs;
//! * [`TraceDrivenCostModel`] builds the *real* per-request GEMV command
//!   stream (GWRITEs plus logit/attend tiles, shaped by [`KvGeometry`]
//!   exactly as Section 6.3 lays K/V out) and replays it through a
//!   [`DramChannel`] with dual row buffers via the
//!   [`GemvEngine`]. Replays are memoized by
//!   seq-len bucket (see [`TraceDrivenCostModel::bucket`]), so a serving
//!   loop pays the cycle model once per distinct context-length bucket and
//!   hash lookups thereafter.
//!
//! [`calibration_drift`] quantifies where the two models disagree — the
//! drift is largest at short contexts, where Algorithm 1 charges a full
//! `L_tile` for tiles that touch only a few banks (see
//! [`DEFAULT_DRIFT_TOLERANCE`]).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use neupims_dram::{ChannelStats, DramChannel};
use neupims_kvcache::KvGeometry;
use neupims_pim::engine::bankgroup_strided_order;
use neupims_pim::{CommandMode, GemvEngine, GemvJob, TileSpec};
use neupims_types::{config::PimConfig, HbmTiming, MemConfig, NeuPimsConfig};

use crate::estimator::MhaLatencyEstimator;

/// Which [`MhaCostModel`] a pricing layer should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The Algorithm 1 closed form (calibrated `L_tile` / `L_GWRITE`).
    #[default]
    Analytic,
    /// Command-stream replay through the cycle-level DRAM model.
    TraceDriven,
}

/// Canonical names accepted by [`CostModelKind::from_name`] (and the CLI's
/// `--cost-model` flag).
pub const COST_MODEL_NAMES: [&str; 2] = ["analytic", "trace"];

impl CostModelKind {
    /// Canonical name (`"analytic"` / `"trace"`).
    pub fn name(self) -> &'static str {
        match self {
            CostModelKind::Analytic => "analytic",
            CostModelKind::TraceDriven => "trace",
        }
    }

    /// Parses a CLI name (case-insensitive; `algorithm1`, `trace-driven`,
    /// and `cycle` are accepted aliases). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "analytic" | "algorithm1" | "alg1" => Some(CostModelKind::Analytic),
            "trace" | "trace-driven" | "cycle" => Some(CostModelKind::TraceDriven),
            _ => None,
        }
    }
}

impl std::fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters of a trace-driven model's life so far: the channel activity of
/// every simulated command stream plus the memoization balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Merged DRAM channel counters of every *distinct* (non-memoized)
    /// command stream replayed so far. Memo hits reuse a prior stream's
    /// cycles without re-simulating, so these counters describe the
    /// distinct streams, not per-iteration traffic.
    pub stats: ChannelStats,
    /// Command streams actually simulated (memo misses).
    pub replays: u64,
    /// Estimates served from the memo without simulation.
    pub memo_hits: u64,
    /// Distinct command streams whose cycles came from the on-disk replay
    /// cache (see [`TraceMemo::with_cache_dir`]) instead of simulation —
    /// the cross-process analogue of `replays`. Only the *first* touch of
    /// a disk-loaded entry counts here; repeats count as `memo_hits`.
    pub disk_hits: u64,
    /// Identity of the underlying replay memo (derived from its shared
    /// allocation). Several cost-model clones — e.g. serving replicas
    /// built from clones of one device — snapshot the *same* cumulative
    /// counters; aggregators dedupe on this id instead of summing the
    /// same memo several times. `0` marks an aggregate of several memos.
    pub memo_id: u64,
}

impl TraceSnapshot {
    /// Fraction of estimates served from the memo, in `[0, 1]`.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.replays + self.memo_hits + self.disk_hits;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Fraction of *distinct* command streams served from the on-disk
    /// replay cache instead of simulated, in `[0, 1]`. A fully-warm rerun
    /// over a populated cache directory reports `1.0`.
    pub fn disk_hit_rate(&self) -> f64 {
        let total = self.replays + self.disk_hits;
        if total == 0 {
            0.0
        } else {
            self.disk_hits as f64 / total as f64
        }
    }
}

/// Prices the PIM-resident GEMV share of one request's decode MHA.
///
/// This is the cost function of every scheduling decision downstream:
/// Algorithm 2 balances per-channel loads with it
/// ([`assign_min_load`](crate::assign_min_load)), Algorithm 3 sub-batch
/// phases are paced by it, and the serving loop's NPU/PIM overlap credit
/// derives from it. Implementations must be deterministic — identical
/// inputs produce identical estimates (memoization and the parity tests
/// rely on it) — and `Send`, so serving replicas carrying them can
/// advance on fleet worker threads.
pub trait MhaCostModel: std::fmt::Debug + Send {
    /// Model name (`"analytic"` / `"trace"`), as printed by the CLI.
    fn name(&self) -> &'static str;

    /// The K/V layout geometry the costs are computed for.
    fn geometry(&self) -> &KvGeometry;

    /// Estimated MHA latency (cycles) of one request with `seq_len` tokens
    /// of context, per decoder layer, on its home PIM channel.
    fn estimate(&self, seq_len: u64) -> f64;

    /// Estimated total load (cycles) of a set of co-located requests: the
    /// serial composition of their per-request GEMV streams on one channel.
    fn estimate_sum(&self, seq_lens: &[u64]) -> f64 {
        seq_lens.iter().map(|&s| self.estimate(s)).sum()
    }

    /// Channel activity and memoization counters, for models that simulate
    /// real command streams (`None` for closed-form models).
    fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        None
    }

    /// Pre-simulates the command streams a workload will touch, before the
    /// serving loop starts paying for them one miss at a time. Each
    /// `(lo, hi)` span covers the context lengths `lo..=hi` one request
    /// sweeps while decoding. Trace-driven models collapse the spans to
    /// their distinct memo buckets and cold-replay the missing ones in
    /// parallel on up to `jobs` scoped threads; closed-form models have
    /// nothing to warm. Returns the number of streams simulated.
    fn warm_replay(&self, _spans: &[(u64, u64)], _jobs: usize) -> u64 {
        0
    }

    /// Clones the model behind a box (serving sims and fleets replicate
    /// one configured model).
    fn clone_box(&self) -> Box<dyn MhaCostModel>;
}

impl Clone for Box<dyn MhaCostModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The estimator *is* the analytic cost model (same numbers, same type).
impl MhaCostModel for MhaLatencyEstimator {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn geometry(&self) -> &KvGeometry {
        MhaLatencyEstimator::geometry(self)
    }

    fn estimate(&self, seq_len: u64) -> f64 {
        MhaLatencyEstimator::estimate(self, seq_len)
    }

    fn clone_box(&self) -> Box<dyn MhaCostModel> {
        Box::new(*self)
    }
}

/// The Algorithm 1 closed form as a boxed-trait citizen: wraps an
/// [`MhaLatencyEstimator`] and reproduces it bit-for-bit (pinned by the
/// `analytic_matches_legacy_estimator` regression tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCostModel {
    est: MhaLatencyEstimator,
}

impl AnalyticCostModel {
    /// Wraps an estimator.
    pub fn new(est: MhaLatencyEstimator) -> Self {
        Self { est }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &MhaLatencyEstimator {
        &self.est
    }
}

impl MhaCostModel for AnalyticCostModel {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn geometry(&self) -> &KvGeometry {
        self.est.geometry()
    }

    fn estimate(&self, seq_len: u64) -> f64 {
        self.est.estimate(seq_len)
    }

    fn clone_box(&self) -> Box<dyn MhaCostModel> {
        Box::new(*self)
    }
}

/// Memo key: the geometry/mode fingerprint, a hash of the hardware
/// configuration the replay runs on (memory organization, timing, PIM
/// datapath), and the bucketed context length — one entry per distinct
/// command-stream shape *and* hardware, so models sharing a [`TraceMemo`]
/// across different configs never serve each other's cycles.
type TraceKey = (u64, u64, u64, u64, bool, u64, u64);

/// Shards the key space of one [`TraceMemo`]. 16 shards keep warm lookups
/// from parallel fleet workers on disjoint reader-writer locks for any
/// realistic worker count, at negligible memory cost.
const MEMO_SHARDS: usize = 16;

/// Version tag of the on-disk replay-cache format. Bump it whenever the
/// cycle model or the memo-key layout changes meaning: files carrying any
/// other tag are ignored (with a warning), never misread.
const MEMO_CACHE_VERSION: &str = "neupims-trace-memo-v1";

/// One memoized command stream, or the promise of one.
#[derive(Debug)]
enum MemoEntry {
    /// Replayed (or disk-loaded) cycles. `from_disk` flags a disk-loaded
    /// entry whose first touch has not yet been counted as a disk hit.
    Ready { cycles: f64, from_disk: bool },
    /// A replay in flight on some thread. Waiters block on the flight's
    /// condvar instead of redundantly simulating the same stream.
    InFlight(Arc<Flight>),
}

/// Single-flight rendezvous: the replaying thread publishes the cycles
/// and wakes every waiter.
#[derive(Debug, Default)]
struct Flight {
    cycles: Mutex<Option<f64>>,
    done: Condvar,
}

impl Flight {
    fn publish(&self, cycles: f64) {
        *self.cycles.lock().expect("flight poisoned") = Some(cycles);
        self.done.notify_all();
    }

    fn wait(&self) -> f64 {
        let mut slot = self.cycles.lock().expect("flight poisoned");
        loop {
            if let Some(cycles) = *slot {
                return cycles;
            }
            slot = self.done.wait(slot).expect("flight poisoned");
        }
    }
}

/// Opt-in persistence: a directory of append-only replay-cache files, one
/// per hardware fingerprint.
#[derive(Debug)]
struct MemoPersist {
    dir: PathBuf,
}

#[derive(Debug)]
struct TraceMemoShared {
    shards: [RwLock<HashMap<TraceKey, MemoEntry>>; MEMO_SHARDS],
    /// Merged channel activity of every replayed stream. Touched only on
    /// cold replays, so it never contends with warm lookups.
    stats: Mutex<ChannelStats>,
    replays: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    /// `Some` when the memo is backed by an on-disk cache directory; the
    /// mutex serializes appends.
    persist: Mutex<Option<MemoPersist>>,
}

impl Default for TraceMemoShared {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            stats: Mutex::new(ChannelStats::default()),
            replays: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            persist: Mutex::new(None),
        }
    }
}

/// Shared replay memo of [`TraceDrivenCostModel`]s. Cloning shares the
/// underlying cache, so every model handed out by one device (across
/// serving iterations, scheduler calls, device clones, and — via
/// fleet-level sharing — whole replica fleets) amortizes the same set of
/// simulated command streams.
///
/// The memo is safe and cheap to hit from many threads at once: the key
/// space is split over 16 reader-writer-locked shards (warm lookups
/// from parallel fleet workers take non-exclusive read locks on —
/// usually — different shards), counters are atomics, and cold misses
/// are **single-flight**: the first thread to miss a bucket replays it
/// while later arrivals for the same bucket wait on its in-flight
/// marker and reuse the result, so a stream is never simulated twice. Since every
/// estimate is the deterministic replay of its key, the counters are
/// timing-independent: `replays` equals the number of distinct keys
/// touched no matter how many threads race.
///
/// [`Self::with_cache_dir`] adds cross-process persistence: replays are
/// appended to versioned per-fingerprint files and loaded back on
/// construction, so reruns skip cold replay entirely (tracked by
/// [`TraceSnapshot::disk_hits`]).
#[derive(Debug, Clone, Default)]
pub struct TraceMemo(Arc<TraceMemoShared>);

impl TraceMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// A memo backed by an on-disk replay cache at `dir` (created if
    /// missing). Every cache file already present is loaded — entries are
    /// keyed by hardware fingerprint and bucket, so a directory can be
    /// shared across heterogeneous configurations — and every future cold
    /// replay is appended, making reruns (eval suites, sweeps, repeated
    /// CLI invocations) skip simulation entirely.
    ///
    /// Files with an unknown version tag and corrupt lines are skipped
    /// with a warning on stderr, never misread; delete the directory (or
    /// a single `memo-<fingerprint>.txt`) to invalidate.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created or
    /// listed. Unreadable individual files are warnings, not errors.
    pub fn with_cache_dir(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let memo = Self::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let is_cache_file = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("memo-") && n.ends_with(".txt"));
            if is_cache_file {
                memo.load_cache_file(&path);
            }
        }
        *memo.0.persist.lock().expect("memo persist poisoned") = Some(MemoPersist {
            dir: dir.to_path_buf(),
        });
        Ok(memo)
    }

    /// The cache directory backing this memo, when persistence is on.
    pub fn cache_dir(&self) -> Option<PathBuf> {
        self.0
            .persist
            .lock()
            .expect("memo persist poisoned")
            .as_ref()
            .map(|p| p.dir.clone())
    }

    /// Memoized command streams currently held (ready entries only).
    pub fn entries(&self) -> usize {
        self.0
            .shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("memo shard poisoned")
                    .values()
                    .filter(|e| matches!(e, MemoEntry::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// Counters accumulated so far, across every model sharing this memo.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            stats: *self.0.stats.lock().expect("memo stats poisoned"),
            replays: self.0.replays.load(Ordering::Relaxed),
            memo_hits: self.0.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.0.disk_hits.load(Ordering::Relaxed),
            memo_id: Arc::as_ptr(&self.0) as usize as u64,
        }
    }

    fn shard(&self, key: &TraceKey) -> &RwLock<HashMap<TraceKey, MemoEntry>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.0.shards[h.finish() as usize % MEMO_SHARDS]
    }

    /// Whether a key is already memoized (or being replayed right now) —
    /// the warmup pass skips these.
    fn contains(&self, key: &TraceKey) -> bool {
        self.shard(key)
            .read()
            .expect("memo shard poisoned")
            .contains_key(key)
    }

    /// The warm path: the key's cycles if ready, counting the hit. Never
    /// blocks on in-flight replays (callers fall through to
    /// [`Self::lookup_or_lead`]).
    fn lookup_fast(&self, key: &TraceKey) -> Option<f64> {
        let guard = self.shard(key).read().expect("memo shard poisoned");
        match guard.get(key) {
            Some(MemoEntry::Ready {
                cycles,
                from_disk: false,
            }) => {
                self.0.memo_hits.fetch_add(1, Ordering::Relaxed);
                Some(*cycles)
            }
            _ => None,
        }
    }

    /// The slow path: resolves a key to ready cycles, an in-flight replay
    /// to wait on, or leadership of a fresh flight (the caller must
    /// replay and [`Self::complete`]).
    fn lookup_or_lead(&self, key: TraceKey) -> MemoLookup {
        let mut guard = self.shard(&key).write().expect("memo shard poisoned");
        match guard.get_mut(&key) {
            Some(MemoEntry::Ready { cycles, from_disk }) => {
                if *from_disk {
                    *from_disk = false;
                    self.0.disk_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.0.memo_hits.fetch_add(1, Ordering::Relaxed);
                }
                MemoLookup::Ready(*cycles)
            }
            Some(MemoEntry::InFlight(flight)) => MemoLookup::Wait(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight::default());
                guard.insert(key, MemoEntry::InFlight(Arc::clone(&flight)));
                MemoLookup::Lead(flight)
            }
        }
    }

    /// Publishes a led replay: merges its channel stats, persists it,
    /// replaces the in-flight entry, and wakes the waiters.
    fn complete(&self, key: TraceKey, flight: &Flight, cycles: f64, stats: &ChannelStats) {
        self.0
            .stats
            .lock()
            .expect("memo stats poisoned")
            .merge(stats);
        self.0.replays.fetch_add(1, Ordering::Relaxed);
        self.append_to_cache(&key, cycles);
        let mut guard = self.shard(&key).write().expect("memo shard poisoned");
        guard.insert(
            key,
            MemoEntry::Ready {
                cycles,
                from_disk: false,
            },
        );
        drop(guard);
        flight.publish(cycles);
    }

    fn cache_file(dir: &Path, fingerprint: u64) -> PathBuf {
        dir.join(format!("memo-{fingerprint:016x}.txt"))
    }

    /// Appends one replayed entry to its fingerprint's cache file (no-op
    /// without persistence). Write failures are warnings: a full disk
    /// must not take the simulation down.
    fn append_to_cache(&self, key: &TraceKey, cycles: f64) {
        let persist = self.0.persist.lock().expect("memo persist poisoned");
        let Some(p) = persist.as_ref() else {
            return;
        };
        let path = Self::cache_file(&p.dir, key.5);
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                if f.metadata()?.len() == 0 {
                    writeln!(f, "{MEMO_CACHE_VERSION}")?;
                }
                writeln!(
                    f,
                    "{} {} {} {} {} {:016x} {} {:016x}",
                    key.0,
                    key.1,
                    key.2,
                    key.3,
                    key.4 as u8,
                    key.5,
                    key.6,
                    cycles.to_bits()
                )
            });
        if let Err(e) = res {
            eprintln!(
                "warning: failed to append to replay cache {}: {e}",
                path.display()
            );
        }
    }

    /// Loads one cache file, inserting entries as disk-backed. Version
    /// mismatches and corrupt lines are skipped with a warning.
    fn load_cache_file(&self, path: &Path) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "warning: ignoring unreadable replay cache {}: {e}",
                    path.display()
                );
                return;
            }
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(MEMO_CACHE_VERSION) {
            eprintln!(
                "warning: ignoring replay cache {} (version mismatch, expected {MEMO_CACHE_VERSION})",
                path.display()
            );
            return;
        }
        let mut corrupt = 0usize;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_cache_line(line) {
                Some((key, cycles)) => {
                    self.shard(&key)
                        .write()
                        .expect("memo shard poisoned")
                        .insert(
                            key,
                            MemoEntry::Ready {
                                cycles,
                                from_disk: true,
                            },
                        );
                }
                None => corrupt += 1,
            }
        }
        if corrupt > 0 {
            eprintln!(
                "warning: skipped {corrupt} corrupt line(s) in replay cache {}",
                path.display()
            );
        }
    }
}

/// Outcome of [`TraceMemo::lookup_or_lead`].
enum MemoLookup {
    /// The cycles are memoized; the hit has been counted.
    Ready(f64),
    /// Another thread is replaying this key: wait for its flight.
    Wait(Arc<Flight>),
    /// This caller owns the replay and must [`TraceMemo::complete`] it.
    Lead(Arc<Flight>),
}

/// Parses one cache line: the seven key fields then the cycles as raw
/// `f64` bits in hex (bit-identical across processes by construction).
fn parse_cache_line(line: &str) -> Option<(TraceKey, f64)> {
    let mut it = line.split_whitespace();
    let embed = it.next()?.parse().ok()?;
    let heads = it.next()?.parse().ok()?;
    let page_elems = it.next()?.parse().ok()?;
    let banks = it.next()?.parse().ok()?;
    let dual = match it.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let fingerprint = u64::from_str_radix(it.next()?, 16).ok()?;
    let bucket = it.next()?.parse().ok()?;
    let cycles = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    if it.next().is_some() || !cycles.is_finite() {
        return None;
    }
    Some((
        (embed, heads, page_elems, banks, dual, fingerprint, bucket),
        cycles,
    ))
}

/// Cycle-level MHA pricing: the per-request GEMV command stream, replayed
/// through the dual-row-buffer DRAM channel model.
///
/// Per request the model builds what Section 6.3's layout implies:
///
/// * the **logit** GEMV (`Kᵀ x Q`): `ceil(E/P_DRAM)` GWRITEs for the query
///   pages, then `ceil(seq/B_chnl)` grouped-activation rounds per K page —
///   the final round activating only the banks the tail tokens occupy
///   (Algorithm 1 rounds that partial tile up to a full one; this model
///   does not, which is the main source of small-context drift);
/// * the **attend** GEMV (`L x V`): per head, `ceil(seq/P_DRAM)` logit-page
///   GWRITEs and `ceil(d_head/B_chnl)` rounds per sequence page.
///
/// Both streams run through a [`GemvEngine`] (composite `PIM_GEMV`
/// commands on dual-row-buffer hardware, Newton-style fine-grained control
/// otherwise — matching the `l_tile` vs `l_tile_fine` calibration split)
/// on a fresh [`DramChannel`], refresh included. The measured span is the
/// estimate.
///
/// Replays are memoized by [`Self::bucket`]: context lengths are rounded
/// up to ~6% granularity, so a serving loop touching thousands of distinct
/// lengths simulates only O(hundreds) streams, and
/// [`MhaCostModel::estimate_sum`] composes per-request results from the
/// shared [`TraceMemo`].
#[derive(Debug, Clone)]
pub struct TraceDrivenCostModel {
    geometry: KvGeometry,
    mem: MemConfig,
    timing: HbmTiming,
    pim: PimConfig,
    dual: bool,
    /// Hash of `(mem, timing, pim)`, part of every memo key.
    config_fingerprint: u64,
    memo: TraceMemo,
}

impl TraceDrivenCostModel {
    /// Builds the model for one hardware configuration and K/V geometry.
    /// `dual_row_buffer` selects the command style (composite `PIM_GEMV`
    /// with dual buffers, fine-grained Newton control without) and the
    /// channel's buffer mode.
    pub fn new(cfg: &NeuPimsConfig, geometry: KvGeometry, dual_row_buffer: bool) -> Self {
        Self::with_memo(cfg, geometry, dual_row_buffer, TraceMemo::new())
    }

    /// Like [`Self::new`], but sharing an existing replay memo (device
    /// backends hand the same memo to every model they create).
    pub fn with_memo(
        cfg: &NeuPimsConfig,
        geometry: KvGeometry,
        dual_row_buffer: bool,
        memo: TraceMemo,
    ) -> Self {
        // The replay depends on the whole hardware description, not just
        // the geometry; fingerprint it into the memo key so one memo can
        // be shared across models without cross-config collisions. The
        // config structs are plain numeric records, so their Debug forms
        // are faithful fingerprint material.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}{:?}{:?}", cfg.mem, cfg.timing, cfg.pim).hash(&mut h);
        Self {
            geometry,
            mem: cfg.mem,
            timing: cfg.timing,
            pim: cfg.pim,
            dual: dual_row_buffer,
            config_fingerprint: h.finish(),
            memo,
        }
    }

    /// Whether the model simulates dual-row-buffer (composite-command)
    /// hardware.
    pub fn dual_row_buffer(&self) -> bool {
        self.dual
    }

    /// The memo bucket a context length falls into: `seq_len` rounded up
    /// to a quantum of `max(B_chnl, 2^floor(log2 seq)/16)`. For contexts
    /// of at least `16 * B_chnl` tokens the quantum is at most `seq/16`,
    /// so bucketing overestimates by under ~6.25% while collapsing the
    /// memo to a few entries per octave; below that the quantum clamps to
    /// `B_chnl` (one bank row), which matches Algorithm 1's own
    /// full-tile rounding granularity.
    pub fn bucket(&self, seq_len: u64) -> u64 {
        if seq_len == 0 {
            return 0;
        }
        let pow2 = 1u64 << (63 - seq_len.leading_zeros() as u64);
        let quantum = (pow2 / 16).max(self.geometry.banks).max(1);
        seq_len.div_ceil(quantum) * quantum
    }

    /// Counters accumulated so far (shared across clones of this model's
    /// memo).
    pub fn snapshot(&self) -> TraceSnapshot {
        self.memo.snapshot()
    }

    /// The replay memo this model shares.
    pub fn memo(&self) -> &TraceMemo {
        &self.memo
    }

    fn key(&self, bucket: u64) -> TraceKey {
        let g = &self.geometry;
        (
            g.embed,
            g.heads,
            g.page_elems,
            g.banks,
            self.dual,
            self.config_fingerprint,
            bucket,
        )
    }

    /// Builds the per-request GEMV jobs for a `seq_len`-token context.
    fn build_jobs(&self, seq_len: u64) -> Vec<GemvJob> {
        let g = &self.geometry;
        let order = bankgroup_strided_order(&self.mem);
        let rows_per_bank = self.mem.rows_per_bank().max(1) as u32;
        let mut row: u32 = 0;
        let mut fresh_row = || {
            let r = row % rows_per_bank;
            row = row.wrapping_add(1);
            r
        };

        // Logit GEMV (Kᵀ x Q): query-page GWRITEs, then one activation
        // round per (bank-row of tokens, K page). The last row activates
        // only the banks the tail tokens occupy.
        let k_pages = g.logit_gwrites();
        let mut logit_tiles = Vec::new();
        let bank_rows = seq_len.div_ceil(g.banks);
        for r in 0..bank_rows {
            let width = (seq_len - r * g.banks).min(g.banks) as usize;
            for _ in 0..k_pages {
                let row = fresh_row();
                logit_tiles.push(TileSpec {
                    rows: order[..width].iter().map(|&b| (b, row)).collect(),
                });
            }
        }
        let gwrites = (0..k_pages)
            .map(|i| (order[i as usize % order.len()], fresh_row()))
            .collect();
        let n_logit = logit_tiles.len() as u32;
        let logit = GemvJob {
            gwrites,
            tiles: logit_tiles,
            result_bursts: if n_logit == 0 {
                0
            } else {
                (n_logit / 4).max(1)
            },
            min_start: 0,
        };
        if seq_len == 0 {
            // Only the fixed query GWRITEs remain (Algorithm 1's seq=0
            // degenerate case).
            return vec![logit];
        }

        // Attend GEMV (L x V): per head, per sequence page, one activation
        // round per bank-row of embedding dimensions.
        let seq_pages = seq_len.div_ceil(g.page_elems);
        let d_rows = g.d_head().div_ceil(g.banks);
        let mut attend_tiles = Vec::new();
        for _head in 0..g.heads {
            for _p in 0..seq_pages {
                for dr in 0..d_rows {
                    let width = (g.d_head() - dr * g.banks).min(g.banks) as usize;
                    let row = fresh_row();
                    attend_tiles.push(TileSpec {
                        rows: order[..width].iter().map(|&b| (b, row)).collect(),
                    });
                }
            }
        }
        let attend_gwrites = (0..g.attend_gwrites(seq_len))
            .map(|i| (order[i as usize % order.len()], fresh_row()))
            .collect();
        let n_attend = attend_tiles.len() as u32;
        let attend = GemvJob {
            gwrites: attend_gwrites,
            tiles: attend_tiles,
            result_bursts: (n_attend / 4).max(1),
            min_start: 0,
        };
        vec![logit, attend]
    }

    /// Replays the command stream of one bucketed context length through a
    /// fresh channel and returns its span.
    fn replay(&self, bucket: u64) -> (f64, ChannelStats) {
        let mode = if self.dual {
            CommandMode::Composite
        } else {
            CommandMode::FineGrained
        };
        let mut ch = DramChannel::new(self.mem, self.timing, self.dual);
        let mut engine = GemvEngine::new(self.pim, mode, true);
        for job in self.build_jobs(bucket) {
            engine.enqueue(job);
        }
        let stats = engine
            .run_to_completion(&mut ch)
            .expect("trace replay must be schedulable on a validated config");
        let mut ch_stats = *ch.stats();
        // The channel classifies row hits/misses only for controller-level
        // transactions; PIM command streams bypass that layer. A GEMV
        // stream never revisits an open row — every PIM-slot activation is
        // a cold miss (streaming is the whole point of in-bank compute) —
        // so record them as such for the hit-rate surfaced upstream.
        ch_stats.row_misses += ch_stats.pim_acts;
        (stats.span() as f64, ch_stats)
    }
}

impl MhaCostModel for TraceDrivenCostModel {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn geometry(&self) -> &KvGeometry {
        &self.geometry
    }

    fn estimate(&self, seq_len: u64) -> f64 {
        let bucket = self.bucket(seq_len);
        let key = self.key(bucket);
        // Warm path: a shared read lock on the key's shard, no waiting on
        // writers of other shards and no exclusive section at all.
        if let Some(cycles) = self.memo.lookup_fast(&key) {
            return cycles;
        }
        match self.memo.lookup_or_lead(key) {
            MemoLookup::Ready(cycles) => cycles,
            // Single flight: a concurrent miss on the same bucket waits
            // for the one replay in progress instead of re-simulating.
            MemoLookup::Wait(flight) => {
                let cycles = flight.wait();
                self.memo.0.memo_hits.fetch_add(1, Ordering::Relaxed);
                cycles
            }
            MemoLookup::Lead(flight) => {
                // Replay outside every lock: other shards (and other keys
                // of this shard) stay fully available meanwhile.
                let (cycles, stats) = self.replay(bucket);
                self.memo.complete(key, &flight, cycles, &stats);
                cycles
            }
        }
    }

    fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        Some(self.snapshot())
    }

    fn warm_replay(&self, spans: &[(u64, u64)], jobs: usize) -> u64 {
        // Walk each span through the bucket lattice: every context in
        // `[s, bucket(s)]` maps to `bucket(s)` (bucketing is monotone and
        // rounds up), so jumping to `bucket(s) + 1` enumerates exactly
        // the distinct buckets a span touches.
        let mut buckets = std::collections::BTreeSet::new();
        for &(lo, hi) in spans {
            let mut s = lo;
            while s <= hi {
                let b = self.bucket(s);
                buckets.insert(b);
                s = b + 1;
            }
        }
        let missing: Vec<u64> = buckets
            .into_iter()
            .filter(|&b| !self.memo.contains(&self.key(b)))
            .collect();
        if missing.is_empty() {
            return 0;
        }
        let jobs = jobs.max(1).min(missing.len());
        let chunk = missing.len().div_ceil(jobs);
        std::thread::scope(|scope| {
            for part in missing.chunks(chunk) {
                scope.spawn(move || {
                    for &bucket in part {
                        self.estimate(bucket);
                    }
                });
            }
        });
        missing.len() as u64
    }

    fn clone_box(&self) -> Box<dyn MhaCostModel> {
        Box::new(self.clone())
    }
}

/// Default relative tolerance of the calibration-drift check: analytic
/// and trace-driven MHA latencies are expected to agree within this
/// fraction at every context length. The constants were calibrated from
/// the same cycle model, so residual drift comes from what the closed
/// form leaves out — partial-width logit tiles at non-bank-aligned
/// contexts, GWRITE/tile ramp-up, refresh placement, result readback, and
/// the memo's ~6% seq-len bucketing — and stays in the low single-digit
/// percent on the Table 2 configuration (the `drift` CLI command prints
/// the sweep). A violation means the cycle model and the Algorithm 1
/// constants have genuinely diverged: recalibrate, or switch the affected
/// runs to trace-driven pricing.
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.10;

/// Analytic-vs-trace disagreement at one context length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPoint {
    /// Context length probed.
    pub seq_len: u64,
    /// Analytic estimate, cycles.
    pub analytic: f64,
    /// Trace-driven estimate, cycles.
    pub trace: f64,
}

impl DriftPoint {
    /// Relative error of the trace-driven estimate against the analytic
    /// one, `|trace - analytic| / max(analytic, 1)`.
    pub fn rel_err(&self) -> f64 {
        (self.trace - self.analytic).abs() / self.analytic.max(1.0)
    }
}

/// Outcome of a [`calibration_drift`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// One point per probed context length, in input order.
    pub points: Vec<DriftPoint>,
    /// The tolerance violations were judged against.
    pub tolerance: f64,
}

impl DriftReport {
    /// Points whose relative error exceeds the tolerance.
    pub fn violations(&self) -> Vec<&DriftPoint> {
        self.points
            .iter()
            .filter(|p| p.rel_err() > self.tolerance)
            .collect()
    }

    /// Largest relative error observed (0 for an empty sweep).
    pub fn max_rel_err(&self) -> f64 {
        self.points
            .iter()
            .map(DriftPoint::rel_err)
            .fold(0.0, f64::max)
    }

    /// Whether every probed point agreed within tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.violations().is_empty()
    }
}

/// Sweeps `seq_lens` through both models and reports where they disagree
/// by more than `tolerance` (relative). This is the calibration-drift
/// check: when the cycle model evolves (new timing parameters, new command
/// styles), the sweep shows where the Algorithm 1 constants stopped being
/// a faithful summary of it.
pub fn calibration_drift(
    analytic: &dyn MhaCostModel,
    trace: &dyn MhaCostModel,
    seq_lens: &[u64],
    tolerance: f64,
) -> DriftReport {
    let points = seq_lens
        .iter()
        .map(|&seq_len| DriftPoint {
            seq_len,
            analytic: analytic.estimate(seq_len),
            trace: trace.estimate(seq_len),
        })
        .collect();
    DriftReport { points, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neupims_types::LlmConfig;

    fn geometry() -> KvGeometry {
        KvGeometry::for_model(&LlmConfig::gpt3_7b(), &MemConfig::table2())
    }

    fn analytic() -> MhaLatencyEstimator {
        let cal = neupims_pim::calibrate(&NeuPimsConfig::table2()).unwrap();
        MhaLatencyEstimator::new(geometry(), cal.l_tile, cal.l_gwrite)
    }

    fn trace() -> TraceDrivenCostModel {
        TraceDrivenCostModel::new(&NeuPimsConfig::table2(), geometry(), true)
    }

    #[test]
    fn kind_registry_round_trips() {
        for name in COST_MODEL_NAMES {
            assert_eq!(CostModelKind::from_name(name).unwrap().name(), name);
        }
        assert_eq!(
            CostModelKind::from_name("Trace-Driven"),
            Some(CostModelKind::TraceDriven)
        );
        assert_eq!(CostModelKind::from_name("magic"), None);
        assert_eq!(CostModelKind::default(), CostModelKind::Analytic);
        assert_eq!(CostModelKind::TraceDriven.to_string(), "trace");
    }

    #[test]
    fn analytic_wrapper_matches_estimator_bit_for_bit() {
        let est = analytic();
        let wrapped = AnalyticCostModel::new(est);
        for seq in [0u64, 1, 31, 32, 100, 511, 512, 513, 4096, 16384] {
            assert_eq!(wrapped.estimate(seq).to_bits(), est.estimate(seq).to_bits());
            // The estimator itself is also a (trait-object) analytic model.
            let dy: &dyn MhaCostModel = &est;
            assert_eq!(dy.estimate(seq).to_bits(), est.estimate(seq).to_bits());
        }
        assert_eq!(wrapped.name(), "analytic");
        assert!(wrapped.trace_snapshot().is_none());
        let sum = wrapped.estimate_sum(&[100, 200, 300]);
        assert!((sum - est.estimate_sum(&[100, 200, 300])).abs() < 1e-12);
    }

    #[test]
    fn trace_job_shapes_match_geometry_counts() {
        let t = trace();
        let g = *t.geometry();
        for seq in [0u64, 1, 31, 32, 33, 512, 513, 2048] {
            let jobs = t.build_jobs(seq);
            let tiles: u64 = jobs.iter().map(|j| j.n_tiles()).sum();
            let gwrites: u64 = jobs.iter().map(|j| j.gwrites.len() as u64).sum();
            assert_eq!(tiles, g.mha_tiles(seq), "seq {seq}: tile count");
            assert_eq!(gwrites, g.mha_gwrites(seq), "seq {seq}: gwrite count");
            // Every tile activates at least one and at most B_chnl banks.
            for job in &jobs {
                for tile in &job.tiles {
                    assert!(!tile.rows.is_empty());
                    assert!(tile.rows.len() as u64 <= g.banks);
                }
            }
        }
    }

    #[test]
    fn trace_estimates_are_positive_and_monotone_in_buckets() {
        let t = trace();
        let mut prev = 0.0;
        for seq in [1u64, 32, 128, 512, 1024, 4096] {
            let est = t.estimate(seq);
            assert!(est > 0.0, "seq {seq}");
            assert!(est >= prev, "seq {seq}: {est} < {prev}");
            prev = est;
        }
        // seq=0 costs only the fixed query GWRITEs.
        assert!(t.estimate(0) > 0.0);
        assert!(t.estimate(0) < t.estimate(1));
    }

    #[test]
    fn memo_hits_and_stats_accumulate() {
        let t = trace();
        let a = t.estimate(300);
        let snap1 = t.snapshot();
        assert!(snap1.replays >= 1);
        assert!(snap1.stats.pim_acts > 0, "PIM activations must be counted");
        assert!(snap1.stats.ca_busy > 0);
        // Same bucket: served from the memo, identical cycles.
        let b = t.estimate(300);
        assert_eq!(a.to_bits(), b.to_bits());
        let snap2 = t.snapshot();
        assert_eq!(snap2.replays, snap1.replays);
        assert_eq!(snap2.memo_hits, snap1.memo_hits + 1);
        assert!(snap2.memo_hit_rate() > 0.0);
        // Clones share the memo.
        let clone = t.clone();
        clone.estimate(300);
        assert_eq!(t.snapshot().memo_hits, snap2.memo_hits + 1);
    }

    #[test]
    fn bucket_granularity_is_bounded() {
        let t = trace();
        assert_eq!(t.bucket(0), 0);
        let banks = t.geometry().banks;
        for seq in [1u64, 17, 32, 100, 999, 5000, 16384] {
            let b = t.bucket(seq);
            assert!(b >= seq, "bucket must round up");
            // Below one bank row everything shares the `banks` bucket (the
            // stream shape is one partial activation round either way);
            // above it the quantum is bounded relative to seq.
            if seq < banks {
                assert_eq!(b, banks, "sub-bank-row contexts share one bucket");
            } else {
                let slack = (b - seq) as f64 / seq as f64;
                assert!(slack <= 1.0, "seq {seq} -> bucket {b}");
                if seq >= 512 {
                    assert!(slack < 0.07, "seq {seq} -> bucket {b}: slack {slack}");
                }
            }
            // Bucketing is idempotent.
            assert_eq!(t.bucket(b), b);
        }
    }

    #[test]
    fn trace_agrees_with_analytic_at_steady_state() {
        // At contexts large enough that full-width tiles dominate, the
        // trace-driven span must agree with the Algorithm 1 closed form
        // within the documented tolerance (the constants were calibrated
        // from this very cycle model).
        let a = analytic();
        let t = trace();
        for seq in [512u64, 1024, 4096, 8192] {
            let ea = a.estimate(seq);
            let et = t.estimate(seq);
            let rel = (et - ea).abs() / ea;
            assert!(
                rel < DEFAULT_DRIFT_TOLERANCE,
                "seq {seq}: analytic {ea:.0} vs trace {et:.0} ({rel:.2})"
            );
        }
    }

    #[test]
    fn fine_grained_trace_costs_more_control_traffic() {
        // The Newton-style (single-row-buffer) stream pays per-group
        // control slots; its ca_busy share per tile must exceed the
        // composite stream's.
        let cfg = NeuPimsConfig::table2();
        let dual = TraceDrivenCostModel::new(&cfg, geometry(), true);
        let blocked = TraceDrivenCostModel::new(&cfg, geometry(), false);
        dual.estimate(1024);
        blocked.estimate(1024);
        let ca_dual = dual.snapshot().stats.ca_busy;
        let ca_blocked = blocked.snapshot().stats.ca_busy;
        assert!(
            ca_blocked > ca_dual,
            "fine-grained C/A {ca_blocked} must exceed composite {ca_dual}"
        );
    }

    #[test]
    fn warm_replay_prepopulates_the_memo() {
        let t = trace();
        let warmed = MhaCostModel::warm_replay(&t, &[(1, 2000), (64, 512)], 4);
        assert!(warmed > 0, "a fresh memo has everything to warm");
        let snap = t.snapshot();
        assert_eq!(snap.replays, warmed, "warmup replays exactly the gaps");
        assert_eq!(snap.memo_hits, 0);
        // The serving loop then never cold-replays inside the span.
        t.estimate(300);
        t.estimate(1500);
        t.estimate(2000);
        let after = t.snapshot();
        assert_eq!(after.replays, snap.replays, "warmed spans never re-replay");
        assert_eq!(after.memo_hits, 3);
        // A second pass over the same spans finds nothing missing.
        assert_eq!(MhaCostModel::warm_replay(&t, &[(1, 2000)], 4), 0);
        // Warmed results are bit-identical to an unwarmed model's.
        let cold = trace();
        for seq in [1u64, 77, 300, 1024, 1999] {
            assert_eq!(t.estimate(seq).to_bits(), cold.estimate(seq).to_bits());
        }
        // Analytic models have nothing to warm.
        let a = analytic();
        assert_eq!(MhaCostModel::warm_replay(&a, &[(1, 2000)], 4), 0);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("neupims-memo-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_cache_round_trips_bit_identical() {
        let dir = scratch_dir("roundtrip");
        let cfg = NeuPimsConfig::table2();
        let seqs = [1u64, 128, 300, 1024, 4096];

        let memo1 = TraceMemo::with_cache_dir(&dir).unwrap();
        assert_eq!(memo1.cache_dir().as_deref(), Some(dir.as_path()));
        let m1 = TraceDrivenCostModel::with_memo(&cfg, geometry(), true, memo1.clone());
        let first: Vec<u64> = seqs.iter().map(|&s| m1.estimate(s).to_bits()).collect();
        let populated = memo1.snapshot();
        assert!(populated.replays > 0);
        assert_eq!(populated.disk_hits, 0, "first run has nothing on disk");

        // A fresh memo over the same directory serves everything from
        // disk: zero replays, bit-identical cycles, 100% disk hit rate.
        let memo2 = TraceMemo::with_cache_dir(&dir).unwrap();
        assert_eq!(memo2.entries() as u64, populated.replays);
        let m2 = TraceDrivenCostModel::with_memo(&cfg, geometry(), true, memo2.clone());
        let second: Vec<u64> = seqs.iter().map(|&s| m2.estimate(s).to_bits()).collect();
        assert_eq!(first, second, "disk round trip must be bit-identical");
        let snap = memo2.snapshot();
        assert_eq!(snap.replays, 0, "a warm cache leaves nothing to replay");
        assert_eq!(snap.disk_hits, populated.replays);
        assert!((snap.disk_hit_rate() - 1.0).abs() < f64::EPSILON);
        // Repeat touches count as memo hits, not disk hits.
        m2.estimate(300);
        assert_eq!(memo2.snapshot().disk_hits, snap.disk_hits);
        assert_eq!(memo2.snapshot().memo_hits, snap.memo_hits + 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_cache_entries_are_ignored() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        // Wrong version tag: the whole file is skipped.
        std::fs::write(
            dir.join("memo-000000000000dead.txt"),
            "neupims-trace-memo-v0\n1 2 3 4 1 dead 5 0000000000000000\n",
        )
        .unwrap();
        // Right version, corrupt lines: each line is skipped.
        std::fs::write(
            dir.join("memo-000000000000beef.txt"),
            format!("{MEMO_CACHE_VERSION}\nnot a record\n1 2 3\n1 2 3 4 9 beef 5 zz\n"),
        )
        .unwrap();
        let memo = TraceMemo::with_cache_dir(&dir).unwrap();
        assert_eq!(memo.entries(), 0, "nothing valid to load");
        // The memo still works: estimates replay and persist as usual.
        let m = TraceDrivenCostModel::with_memo(
            &NeuPimsConfig::table2(),
            geometry(),
            true,
            memo.clone(),
        );
        let est = m.estimate(512);
        assert!(est > 0.0);
        assert_eq!(memo.snapshot().replays, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_line_parser_rejects_garbage() {
        assert!(parse_cache_line("").is_none());
        assert!(parse_cache_line("1 2 3 4 1 10 5").is_none(), "short line");
        assert!(
            parse_cache_line("1 2 3 4 1 10 5 0 extra").is_none(),
            "trailing fields"
        );
        assert!(parse_cache_line("1 2 3 4 7 10 5 0").is_none(), "bad bool");
        assert!(
            parse_cache_line("1 2 3 4 1 10 5 7ff0000000000000").is_none(),
            "non-finite cycles"
        );
        let (key, cycles) = parse_cache_line("8 16 256 32 1 00000000000000ff 512 4045000000000000")
            .expect("well-formed line");
        assert_eq!(key, (8, 16, 256, 32, true, 0xff, 512));
        assert_eq!(cycles, 42.0);
    }

    #[test]
    fn drift_report_flags_violations() {
        let a = analytic();
        let t = trace();
        let report = calibration_drift(&a, &t, &[1, 64, 512, 4096], 0.0);
        assert_eq!(report.points.len(), 4);
        // Zero tolerance: everything that differs at all is a violation.
        assert!(!report.violations().is_empty());
        assert!(report.max_rel_err() > 0.0);
        let loose = calibration_drift(&a, &t, &[512, 4096], 10.0);
        assert!(loose.within_tolerance());
        // Short contexts drift more than long ones (full-tile rounding).
        let short = report.points[0].rel_err();
        let long = report.points[3].rel_err();
        assert!(
            short > long,
            "short-context drift {short:.2} should exceed long-context {long:.2}"
        );
    }
}
