//! MHA cost models: the Algorithm 1 closed form and a trace-driven
//! cycle-level alternative behind one trait.
//!
//! Algorithm 1 ([`MhaLatencyEstimator`]) is an *approximation* of what the
//! dual-row-buffer PIM channel actually does: it charges a calibrated
//! `L_tile` per grouped-activation round and `L_GWRITE` per vector page
//! load, ignoring partial-width tiles, refresh interference, ramp-up, and
//! result readback. The cycle model in `neupims-dram` knows all of those.
//! [`MhaCostModel`] abstracts over both:
//!
//! * [`AnalyticCostModel`] wraps the existing estimator bit-for-bit — the
//!   default, and what the paper's scheduler runs;
//! * [`TraceDrivenCostModel`] builds the *real* per-request GEMV command
//!   stream (GWRITEs plus logit/attend tiles, shaped by [`KvGeometry`]
//!   exactly as Section 6.3 lays K/V out) and replays it through a
//!   [`DramChannel`] with dual row buffers via the
//!   [`GemvEngine`]. Replays are memoized by
//!   seq-len bucket (see [`TraceDrivenCostModel::bucket`]), so a serving
//!   loop pays the cycle model once per distinct context-length bucket and
//!   hash lookups thereafter.
//!
//! [`calibration_drift`] quantifies where the two models disagree — the
//! drift is largest at short contexts, where Algorithm 1 charges a full
//! `L_tile` for tiles that touch only a few banks (see
//! [`DEFAULT_DRIFT_TOLERANCE`]).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use neupims_dram::{ChannelStats, DramChannel};
use neupims_kvcache::KvGeometry;
use neupims_pim::engine::bankgroup_strided_order;
use neupims_pim::{CommandMode, GemvEngine, GemvJob, TileSpec};
use neupims_types::{config::PimConfig, HbmTiming, MemConfig, NeuPimsConfig};

use crate::estimator::MhaLatencyEstimator;

/// Which [`MhaCostModel`] a pricing layer should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The Algorithm 1 closed form (calibrated `L_tile` / `L_GWRITE`).
    #[default]
    Analytic,
    /// Command-stream replay through the cycle-level DRAM model.
    TraceDriven,
}

/// Canonical names accepted by [`CostModelKind::from_name`] (and the CLI's
/// `--cost-model` flag).
pub const COST_MODEL_NAMES: [&str; 2] = ["analytic", "trace"];

impl CostModelKind {
    /// Canonical name (`"analytic"` / `"trace"`).
    pub fn name(self) -> &'static str {
        match self {
            CostModelKind::Analytic => "analytic",
            CostModelKind::TraceDriven => "trace",
        }
    }

    /// Parses a CLI name (case-insensitive; `algorithm1`, `trace-driven`,
    /// and `cycle` are accepted aliases). Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "analytic" | "algorithm1" | "alg1" => Some(CostModelKind::Analytic),
            "trace" | "trace-driven" | "cycle" => Some(CostModelKind::TraceDriven),
            _ => None,
        }
    }
}

impl std::fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters of a trace-driven model's life so far: the channel activity of
/// every simulated command stream plus the memoization balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Merged DRAM channel counters of every *distinct* (non-memoized)
    /// command stream replayed so far. Memo hits reuse a prior stream's
    /// cycles without re-simulating, so these counters describe the
    /// distinct streams, not per-iteration traffic.
    pub stats: ChannelStats,
    /// Command streams actually simulated (memo misses).
    pub replays: u64,
    /// Estimates served from the memo without simulation.
    pub memo_hits: u64,
    /// Identity of the underlying replay memo (derived from its shared
    /// allocation). Several cost-model clones — e.g. serving replicas
    /// built from clones of one device — snapshot the *same* cumulative
    /// counters; aggregators dedupe on this id instead of summing the
    /// same memo several times. `0` marks an aggregate of several memos.
    pub memo_id: u64,
}

impl TraceSnapshot {
    /// Fraction of estimates served from the memo, in `[0, 1]`.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.replays + self.memo_hits;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// Prices the PIM-resident GEMV share of one request's decode MHA.
///
/// This is the cost function of every scheduling decision downstream:
/// Algorithm 2 balances per-channel loads with it
/// ([`assign_min_load`](crate::assign_min_load)), Algorithm 3 sub-batch
/// phases are paced by it, and the serving loop's NPU/PIM overlap credit
/// derives from it. Implementations must be deterministic — identical
/// inputs produce identical estimates (memoization and the parity tests
/// rely on it) — and `Send`, so serving replicas carrying them can
/// advance on fleet worker threads.
pub trait MhaCostModel: std::fmt::Debug + Send {
    /// Model name (`"analytic"` / `"trace"`), as printed by the CLI.
    fn name(&self) -> &'static str;

    /// The K/V layout geometry the costs are computed for.
    fn geometry(&self) -> &KvGeometry;

    /// Estimated MHA latency (cycles) of one request with `seq_len` tokens
    /// of context, per decoder layer, on its home PIM channel.
    fn estimate(&self, seq_len: u64) -> f64;

    /// Estimated total load (cycles) of a set of co-located requests: the
    /// serial composition of their per-request GEMV streams on one channel.
    fn estimate_sum(&self, seq_lens: &[u64]) -> f64 {
        seq_lens.iter().map(|&s| self.estimate(s)).sum()
    }

    /// Channel activity and memoization counters, for models that simulate
    /// real command streams (`None` for closed-form models).
    fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        None
    }

    /// Clones the model behind a box (serving sims and fleets replicate
    /// one configured model).
    fn clone_box(&self) -> Box<dyn MhaCostModel>;
}

impl Clone for Box<dyn MhaCostModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The estimator *is* the analytic cost model (same numbers, same type).
impl MhaCostModel for MhaLatencyEstimator {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn geometry(&self) -> &KvGeometry {
        MhaLatencyEstimator::geometry(self)
    }

    fn estimate(&self, seq_len: u64) -> f64 {
        MhaLatencyEstimator::estimate(self, seq_len)
    }

    fn clone_box(&self) -> Box<dyn MhaCostModel> {
        Box::new(*self)
    }
}

/// The Algorithm 1 closed form as a boxed-trait citizen: wraps an
/// [`MhaLatencyEstimator`] and reproduces it bit-for-bit (pinned by the
/// `analytic_matches_legacy_estimator` regression tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCostModel {
    est: MhaLatencyEstimator,
}

impl AnalyticCostModel {
    /// Wraps an estimator.
    pub fn new(est: MhaLatencyEstimator) -> Self {
        Self { est }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &MhaLatencyEstimator {
        &self.est
    }
}

impl MhaCostModel for AnalyticCostModel {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn geometry(&self) -> &KvGeometry {
        self.est.geometry()
    }

    fn estimate(&self, seq_len: u64) -> f64 {
        self.est.estimate(seq_len)
    }

    fn clone_box(&self) -> Box<dyn MhaCostModel> {
        Box::new(*self)
    }
}

/// Memo key: the geometry/mode fingerprint, a hash of the hardware
/// configuration the replay runs on (memory organization, timing, PIM
/// datapath), and the bucketed context length — one entry per distinct
/// command-stream shape *and* hardware, so models sharing a [`TraceMemo`]
/// across different configs never serve each other's cycles.
type TraceKey = (u64, u64, u64, u64, bool, u64, u64);

#[derive(Debug, Default)]
struct TraceMemoInner {
    cache: HashMap<TraceKey, f64>,
    stats: ChannelStats,
    replays: u64,
    memo_hits: u64,
}

/// Shared replay memo of [`TraceDrivenCostModel`]s. Cloning shares the
/// underlying cache, so every model handed out by one device (across
/// serving iterations, scheduler calls, and device clones) amortizes the
/// same set of simulated command streams.
#[derive(Debug, Clone, Default)]
pub struct TraceMemo(Arc<Mutex<TraceMemoInner>>);

impl TraceMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Cycle-level MHA pricing: the per-request GEMV command stream, replayed
/// through the dual-row-buffer DRAM channel model.
///
/// Per request the model builds what Section 6.3's layout implies:
///
/// * the **logit** GEMV (`Kᵀ x Q`): `ceil(E/P_DRAM)` GWRITEs for the query
///   pages, then `ceil(seq/B_chnl)` grouped-activation rounds per K page —
///   the final round activating only the banks the tail tokens occupy
///   (Algorithm 1 rounds that partial tile up to a full one; this model
///   does not, which is the main source of small-context drift);
/// * the **attend** GEMV (`L x V`): per head, `ceil(seq/P_DRAM)` logit-page
///   GWRITEs and `ceil(d_head/B_chnl)` rounds per sequence page.
///
/// Both streams run through a [`GemvEngine`] (composite `PIM_GEMV`
/// commands on dual-row-buffer hardware, Newton-style fine-grained control
/// otherwise — matching the `l_tile` vs `l_tile_fine` calibration split)
/// on a fresh [`DramChannel`], refresh included. The measured span is the
/// estimate.
///
/// Replays are memoized by [`Self::bucket`]: context lengths are rounded
/// up to ~6% granularity, so a serving loop touching thousands of distinct
/// lengths simulates only O(hundreds) streams, and
/// [`MhaCostModel::estimate_sum`] composes per-request results from the
/// shared [`TraceMemo`].
#[derive(Debug, Clone)]
pub struct TraceDrivenCostModel {
    geometry: KvGeometry,
    mem: MemConfig,
    timing: HbmTiming,
    pim: PimConfig,
    dual: bool,
    /// Hash of `(mem, timing, pim)`, part of every memo key.
    config_fingerprint: u64,
    memo: TraceMemo,
}

impl TraceDrivenCostModel {
    /// Builds the model for one hardware configuration and K/V geometry.
    /// `dual_row_buffer` selects the command style (composite `PIM_GEMV`
    /// with dual buffers, fine-grained Newton control without) and the
    /// channel's buffer mode.
    pub fn new(cfg: &NeuPimsConfig, geometry: KvGeometry, dual_row_buffer: bool) -> Self {
        Self::with_memo(cfg, geometry, dual_row_buffer, TraceMemo::new())
    }

    /// Like [`Self::new`], but sharing an existing replay memo (device
    /// backends hand the same memo to every model they create).
    pub fn with_memo(
        cfg: &NeuPimsConfig,
        geometry: KvGeometry,
        dual_row_buffer: bool,
        memo: TraceMemo,
    ) -> Self {
        // The replay depends on the whole hardware description, not just
        // the geometry; fingerprint it into the memo key so one memo can
        // be shared across models without cross-config collisions. The
        // config structs are plain numeric records, so their Debug forms
        // are faithful fingerprint material.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}{:?}{:?}", cfg.mem, cfg.timing, cfg.pim).hash(&mut h);
        Self {
            geometry,
            mem: cfg.mem,
            timing: cfg.timing,
            pim: cfg.pim,
            dual: dual_row_buffer,
            config_fingerprint: h.finish(),
            memo,
        }
    }

    /// Whether the model simulates dual-row-buffer (composite-command)
    /// hardware.
    pub fn dual_row_buffer(&self) -> bool {
        self.dual
    }

    /// The memo bucket a context length falls into: `seq_len` rounded up
    /// to a quantum of `max(B_chnl, 2^floor(log2 seq)/16)`. For contexts
    /// of at least `16 * B_chnl` tokens the quantum is at most `seq/16`,
    /// so bucketing overestimates by under ~6.25% while collapsing the
    /// memo to a few entries per octave; below that the quantum clamps to
    /// `B_chnl` (one bank row), which matches Algorithm 1's own
    /// full-tile rounding granularity.
    pub fn bucket(&self, seq_len: u64) -> u64 {
        if seq_len == 0 {
            return 0;
        }
        let pow2 = 1u64 << (63 - seq_len.leading_zeros() as u64);
        let quantum = (pow2 / 16).max(self.geometry.banks).max(1);
        seq_len.div_ceil(quantum) * quantum
    }

    /// Counters accumulated so far (shared across clones of this model's
    /// memo).
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.memo.0.lock().expect("trace memo poisoned");
        TraceSnapshot {
            stats: inner.stats,
            replays: inner.replays,
            memo_hits: inner.memo_hits,
            memo_id: Arc::as_ptr(&self.memo.0) as usize as u64,
        }
    }

    fn key(&self, bucket: u64) -> TraceKey {
        let g = &self.geometry;
        (
            g.embed,
            g.heads,
            g.page_elems,
            g.banks,
            self.dual,
            self.config_fingerprint,
            bucket,
        )
    }

    /// Builds the per-request GEMV jobs for a `seq_len`-token context.
    fn build_jobs(&self, seq_len: u64) -> Vec<GemvJob> {
        let g = &self.geometry;
        let order = bankgroup_strided_order(&self.mem);
        let rows_per_bank = self.mem.rows_per_bank().max(1) as u32;
        let mut row: u32 = 0;
        let mut fresh_row = || {
            let r = row % rows_per_bank;
            row = row.wrapping_add(1);
            r
        };

        // Logit GEMV (Kᵀ x Q): query-page GWRITEs, then one activation
        // round per (bank-row of tokens, K page). The last row activates
        // only the banks the tail tokens occupy.
        let k_pages = g.logit_gwrites();
        let mut logit_tiles = Vec::new();
        let bank_rows = seq_len.div_ceil(g.banks);
        for r in 0..bank_rows {
            let width = (seq_len - r * g.banks).min(g.banks) as usize;
            for _ in 0..k_pages {
                let row = fresh_row();
                logit_tiles.push(TileSpec {
                    rows: order[..width].iter().map(|&b| (b, row)).collect(),
                });
            }
        }
        let gwrites = (0..k_pages)
            .map(|i| (order[i as usize % order.len()], fresh_row()))
            .collect();
        let n_logit = logit_tiles.len() as u32;
        let logit = GemvJob {
            gwrites,
            tiles: logit_tiles,
            result_bursts: if n_logit == 0 {
                0
            } else {
                (n_logit / 4).max(1)
            },
            min_start: 0,
        };
        if seq_len == 0 {
            // Only the fixed query GWRITEs remain (Algorithm 1's seq=0
            // degenerate case).
            return vec![logit];
        }

        // Attend GEMV (L x V): per head, per sequence page, one activation
        // round per bank-row of embedding dimensions.
        let seq_pages = seq_len.div_ceil(g.page_elems);
        let d_rows = g.d_head().div_ceil(g.banks);
        let mut attend_tiles = Vec::new();
        for _head in 0..g.heads {
            for _p in 0..seq_pages {
                for dr in 0..d_rows {
                    let width = (g.d_head() - dr * g.banks).min(g.banks) as usize;
                    let row = fresh_row();
                    attend_tiles.push(TileSpec {
                        rows: order[..width].iter().map(|&b| (b, row)).collect(),
                    });
                }
            }
        }
        let attend_gwrites = (0..g.attend_gwrites(seq_len))
            .map(|i| (order[i as usize % order.len()], fresh_row()))
            .collect();
        let n_attend = attend_tiles.len() as u32;
        let attend = GemvJob {
            gwrites: attend_gwrites,
            tiles: attend_tiles,
            result_bursts: (n_attend / 4).max(1),
            min_start: 0,
        };
        vec![logit, attend]
    }

    /// Replays the command stream of one bucketed context length through a
    /// fresh channel and returns its span.
    fn replay(&self, bucket: u64) -> (f64, ChannelStats) {
        let mode = if self.dual {
            CommandMode::Composite
        } else {
            CommandMode::FineGrained
        };
        let mut ch = DramChannel::new(self.mem, self.timing, self.dual);
        let mut engine = GemvEngine::new(self.pim, mode, true);
        for job in self.build_jobs(bucket) {
            engine.enqueue(job);
        }
        let stats = engine
            .run_to_completion(&mut ch)
            .expect("trace replay must be schedulable on a validated config");
        let mut ch_stats = *ch.stats();
        // The channel classifies row hits/misses only for controller-level
        // transactions; PIM command streams bypass that layer. A GEMV
        // stream never revisits an open row — every PIM-slot activation is
        // a cold miss (streaming is the whole point of in-bank compute) —
        // so record them as such for the hit-rate surfaced upstream.
        ch_stats.row_misses += ch_stats.pim_acts;
        (stats.span() as f64, ch_stats)
    }
}

impl MhaCostModel for TraceDrivenCostModel {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn geometry(&self) -> &KvGeometry {
        &self.geometry
    }

    fn estimate(&self, seq_len: u64) -> f64 {
        let bucket = self.bucket(seq_len);
        let key = self.key(bucket);
        {
            let mut inner = self.memo.0.lock().expect("trace memo poisoned");
            if let Some(&cycles) = inner.cache.get(&key) {
                inner.memo_hits += 1;
                return cycles;
            }
        }
        // Replay outside the lock: concurrent misses on the same bucket
        // redundantly simulate, but never deadlock or block each other.
        let (cycles, stats) = self.replay(bucket);
        let mut inner = self.memo.0.lock().expect("trace memo poisoned");
        inner.cache.insert(key, cycles);
        inner.stats.merge(&stats);
        inner.replays += 1;
        cycles
    }

    fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        Some(self.snapshot())
    }

    fn clone_box(&self) -> Box<dyn MhaCostModel> {
        Box::new(self.clone())
    }
}

/// Default relative tolerance of the calibration-drift check: analytic
/// and trace-driven MHA latencies are expected to agree within this
/// fraction at every context length. The constants were calibrated from
/// the same cycle model, so residual drift comes from what the closed
/// form leaves out — partial-width logit tiles at non-bank-aligned
/// contexts, GWRITE/tile ramp-up, refresh placement, result readback, and
/// the memo's ~6% seq-len bucketing — and stays in the low single-digit
/// percent on the Table 2 configuration (the `drift` CLI command prints
/// the sweep). A violation means the cycle model and the Algorithm 1
/// constants have genuinely diverged: recalibrate, or switch the affected
/// runs to trace-driven pricing.
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.10;

/// Analytic-vs-trace disagreement at one context length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPoint {
    /// Context length probed.
    pub seq_len: u64,
    /// Analytic estimate, cycles.
    pub analytic: f64,
    /// Trace-driven estimate, cycles.
    pub trace: f64,
}

impl DriftPoint {
    /// Relative error of the trace-driven estimate against the analytic
    /// one, `|trace - analytic| / max(analytic, 1)`.
    pub fn rel_err(&self) -> f64 {
        (self.trace - self.analytic).abs() / self.analytic.max(1.0)
    }
}

/// Outcome of a [`calibration_drift`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// One point per probed context length, in input order.
    pub points: Vec<DriftPoint>,
    /// The tolerance violations were judged against.
    pub tolerance: f64,
}

impl DriftReport {
    /// Points whose relative error exceeds the tolerance.
    pub fn violations(&self) -> Vec<&DriftPoint> {
        self.points
            .iter()
            .filter(|p| p.rel_err() > self.tolerance)
            .collect()
    }

    /// Largest relative error observed (0 for an empty sweep).
    pub fn max_rel_err(&self) -> f64 {
        self.points
            .iter()
            .map(DriftPoint::rel_err)
            .fold(0.0, f64::max)
    }

    /// Whether every probed point agreed within tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.violations().is_empty()
    }
}

/// Sweeps `seq_lens` through both models and reports where they disagree
/// by more than `tolerance` (relative). This is the calibration-drift
/// check: when the cycle model evolves (new timing parameters, new command
/// styles), the sweep shows where the Algorithm 1 constants stopped being
/// a faithful summary of it.
pub fn calibration_drift(
    analytic: &dyn MhaCostModel,
    trace: &dyn MhaCostModel,
    seq_lens: &[u64],
    tolerance: f64,
) -> DriftReport {
    let points = seq_lens
        .iter()
        .map(|&seq_len| DriftPoint {
            seq_len,
            analytic: analytic.estimate(seq_len),
            trace: trace.estimate(seq_len),
        })
        .collect();
    DriftReport { points, tolerance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neupims_types::LlmConfig;

    fn geometry() -> KvGeometry {
        KvGeometry::for_model(&LlmConfig::gpt3_7b(), &MemConfig::table2())
    }

    fn analytic() -> MhaLatencyEstimator {
        let cal = neupims_pim::calibrate(&NeuPimsConfig::table2()).unwrap();
        MhaLatencyEstimator::new(geometry(), cal.l_tile, cal.l_gwrite)
    }

    fn trace() -> TraceDrivenCostModel {
        TraceDrivenCostModel::new(&NeuPimsConfig::table2(), geometry(), true)
    }

    #[test]
    fn kind_registry_round_trips() {
        for name in COST_MODEL_NAMES {
            assert_eq!(CostModelKind::from_name(name).unwrap().name(), name);
        }
        assert_eq!(
            CostModelKind::from_name("Trace-Driven"),
            Some(CostModelKind::TraceDriven)
        );
        assert_eq!(CostModelKind::from_name("magic"), None);
        assert_eq!(CostModelKind::default(), CostModelKind::Analytic);
        assert_eq!(CostModelKind::TraceDriven.to_string(), "trace");
    }

    #[test]
    fn analytic_wrapper_matches_estimator_bit_for_bit() {
        let est = analytic();
        let wrapped = AnalyticCostModel::new(est);
        for seq in [0u64, 1, 31, 32, 100, 511, 512, 513, 4096, 16384] {
            assert_eq!(wrapped.estimate(seq).to_bits(), est.estimate(seq).to_bits());
            // The estimator itself is also a (trait-object) analytic model.
            let dy: &dyn MhaCostModel = &est;
            assert_eq!(dy.estimate(seq).to_bits(), est.estimate(seq).to_bits());
        }
        assert_eq!(wrapped.name(), "analytic");
        assert!(wrapped.trace_snapshot().is_none());
        let sum = wrapped.estimate_sum(&[100, 200, 300]);
        assert!((sum - est.estimate_sum(&[100, 200, 300])).abs() < 1e-12);
    }

    #[test]
    fn trace_job_shapes_match_geometry_counts() {
        let t = trace();
        let g = *t.geometry();
        for seq in [0u64, 1, 31, 32, 33, 512, 513, 2048] {
            let jobs = t.build_jobs(seq);
            let tiles: u64 = jobs.iter().map(|j| j.n_tiles()).sum();
            let gwrites: u64 = jobs.iter().map(|j| j.gwrites.len() as u64).sum();
            assert_eq!(tiles, g.mha_tiles(seq), "seq {seq}: tile count");
            assert_eq!(gwrites, g.mha_gwrites(seq), "seq {seq}: gwrite count");
            // Every tile activates at least one and at most B_chnl banks.
            for job in &jobs {
                for tile in &job.tiles {
                    assert!(!tile.rows.is_empty());
                    assert!(tile.rows.len() as u64 <= g.banks);
                }
            }
        }
    }

    #[test]
    fn trace_estimates_are_positive_and_monotone_in_buckets() {
        let t = trace();
        let mut prev = 0.0;
        for seq in [1u64, 32, 128, 512, 1024, 4096] {
            let est = t.estimate(seq);
            assert!(est > 0.0, "seq {seq}");
            assert!(est >= prev, "seq {seq}: {est} < {prev}");
            prev = est;
        }
        // seq=0 costs only the fixed query GWRITEs.
        assert!(t.estimate(0) > 0.0);
        assert!(t.estimate(0) < t.estimate(1));
    }

    #[test]
    fn memo_hits_and_stats_accumulate() {
        let t = trace();
        let a = t.estimate(300);
        let snap1 = t.snapshot();
        assert!(snap1.replays >= 1);
        assert!(snap1.stats.pim_acts > 0, "PIM activations must be counted");
        assert!(snap1.stats.ca_busy > 0);
        // Same bucket: served from the memo, identical cycles.
        let b = t.estimate(300);
        assert_eq!(a.to_bits(), b.to_bits());
        let snap2 = t.snapshot();
        assert_eq!(snap2.replays, snap1.replays);
        assert_eq!(snap2.memo_hits, snap1.memo_hits + 1);
        assert!(snap2.memo_hit_rate() > 0.0);
        // Clones share the memo.
        let clone = t.clone();
        clone.estimate(300);
        assert_eq!(t.snapshot().memo_hits, snap2.memo_hits + 1);
    }

    #[test]
    fn bucket_granularity_is_bounded() {
        let t = trace();
        assert_eq!(t.bucket(0), 0);
        let banks = t.geometry().banks;
        for seq in [1u64, 17, 32, 100, 999, 5000, 16384] {
            let b = t.bucket(seq);
            assert!(b >= seq, "bucket must round up");
            // Below one bank row everything shares the `banks` bucket (the
            // stream shape is one partial activation round either way);
            // above it the quantum is bounded relative to seq.
            if seq < banks {
                assert_eq!(b, banks, "sub-bank-row contexts share one bucket");
            } else {
                let slack = (b - seq) as f64 / seq as f64;
                assert!(slack <= 1.0, "seq {seq} -> bucket {b}");
                if seq >= 512 {
                    assert!(slack < 0.07, "seq {seq} -> bucket {b}: slack {slack}");
                }
            }
            // Bucketing is idempotent.
            assert_eq!(t.bucket(b), b);
        }
    }

    #[test]
    fn trace_agrees_with_analytic_at_steady_state() {
        // At contexts large enough that full-width tiles dominate, the
        // trace-driven span must agree with the Algorithm 1 closed form
        // within the documented tolerance (the constants were calibrated
        // from this very cycle model).
        let a = analytic();
        let t = trace();
        for seq in [512u64, 1024, 4096, 8192] {
            let ea = a.estimate(seq);
            let et = t.estimate(seq);
            let rel = (et - ea).abs() / ea;
            assert!(
                rel < DEFAULT_DRIFT_TOLERANCE,
                "seq {seq}: analytic {ea:.0} vs trace {et:.0} ({rel:.2})"
            );
        }
    }

    #[test]
    fn fine_grained_trace_costs_more_control_traffic() {
        // The Newton-style (single-row-buffer) stream pays per-group
        // control slots; its ca_busy share per tile must exceed the
        // composite stream's.
        let cfg = NeuPimsConfig::table2();
        let dual = TraceDrivenCostModel::new(&cfg, geometry(), true);
        let blocked = TraceDrivenCostModel::new(&cfg, geometry(), false);
        dual.estimate(1024);
        blocked.estimate(1024);
        let ca_dual = dual.snapshot().stats.ca_busy;
        let ca_blocked = blocked.snapshot().stats.ca_busy;
        assert!(
            ca_blocked > ca_dual,
            "fine-grained C/A {ca_blocked} must exceed composite {ca_dual}"
        );
    }

    #[test]
    fn drift_report_flags_violations() {
        let a = analytic();
        let t = trace();
        let report = calibration_drift(&a, &t, &[1, 64, 512, 4096], 0.0);
        assert_eq!(report.points.len(), 4);
        // Zero tolerance: everything that differs at all is a violation.
        assert!(!report.violations().is_empty());
        assert!(report.max_rel_err() > 0.0);
        let loose = calibration_drift(&a, &t, &[512, 4096], 10.0);
        assert!(loose.within_tolerance());
        // Short contexts drift more than long ones (full-tile rounding).
        let short = report.points[0].rel_err();
        let long = report.points[3].rel_err();
        assert!(
            short > long,
            "short-context drift {short:.2} should exceed long-context {long:.2}"
        );
    }
}
