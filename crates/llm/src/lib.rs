//! LLM decoder-block IR, the NeuPIMs compiler frontend, and roofline
//! analytics.
//!
//! The paper's compiler framework (Section 4, part 4) takes an LLM
//! specification and a system specification and lowers them to per-engine
//! instruction streams. This crate mirrors that stack:
//!
//! * [`ops`] — the operator IR of one decoder block: GEMMs (QKV generation,
//!   attention output projection, FFNs), per-request MHA GEMVs (logit and
//!   attend), vector operators (softmax, layernorm, GeLU, residual adds),
//!   and tensor-parallel all-reduces;
//! * [`block`] — builds the IR for a model at a given batch size and phase
//!   (summarization vs generation), sharded for tensor parallelism;
//! * [`compiler`] — the textual LLM-spec frontend plus lowering from IR to
//!   cost-annotated execution passes (NPU tile plans, vector cycles, PIM
//!   job shapes);
//! * [`roofline`] — arithmetic-intensity and roofline analytics behind the
//!   motivation figures (Figures 4 and 5).
//!
//! # Example
//!
//! ```
//! use neupims_llm::block::decoder_block_ops;
//! use neupims_llm::ops::OpKind;
//! use neupims_types::{LlmConfig, Phase};
//!
//! let ops = decoder_block_ops(&LlmConfig::gpt3_7b(), 4, &[128; 16], Phase::Generation);
//! assert!(ops.iter().any(|op| matches!(op.kind, OpKind::Gemm { .. })));
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod compiler;
pub mod ops;
pub mod roofline;

pub use block::decoder_block_ops;
pub use compiler::{compile_block, parse_spec, CompiledBlock};
pub use ops::{Op, OpKind};
pub use roofline::{gpu_utilization, operator_intensity, roofline_tflops, GpuUtilization};
