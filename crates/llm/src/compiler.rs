//! The NeuPIMs compiler frontend and IR lowering.
//!
//! Mirrors Section 4's compiler framework: the system admin supplies an LLM
//! specification ([`parse_spec`] accepts a small `key = value` format in the
//! spirit of the paper's ONNX-like syntax), and the compiler lowers the
//! decoder-block IR into cost-annotated execution passes —
//! [`neupims_npu::GemmPlan`]s for the systolic cluster, vector-unit cycle
//! totals, interconnect payloads, and the per-request MHA shapes the PIM
//! scheduler consumes.

use neupims_npu::{plan_gemm, GemmPlan, VectorCost};
use neupims_types::{DataType, LlmConfig, NpuConfig, ParallelismConfig, Phase, SimError};

use crate::block::decoder_block_ops;
use crate::ops::OpKind;

/// Cost-annotated lowering of one decoder block.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBlock {
    /// GEMM passes in execution order: QKV, attention projection, FFN1, FFN2.
    pub gemms: Vec<GemmPlan>,
    /// Vector-unit cycles outside MHA (layernorms, GeLU, residual adds).
    pub vector_cycles: u64,
    /// Vector-unit cycles of the MHA softmax (overlappable with PIM, Fig. 10).
    pub softmax_cycles: u64,
    /// Per-request context lengths (the PIM job shapes derive from these).
    pub seq_lens: Vec<u64>,
    /// Bytes each tensor-parallel all-reduce moves per device.
    pub allreduce_bytes: u64,
    /// Number of all-reduces per block (2 with TP > 1, else 0).
    pub allreduces: u32,
}

impl CompiledBlock {
    /// Total NPU systolic cycles of the block's GEMMs.
    pub fn gemm_cycles(&self) -> u64 {
        self.gemms.iter().map(|g| g.compute_cycles).sum()
    }

    /// Total GEMM DRAM traffic (weights + activations + outputs).
    pub fn gemm_bytes(&self) -> u64 {
        self.gemms.iter().map(|g| g.total_bytes()).sum()
    }

    /// Weight bytes streamed per block execution.
    pub fn weight_bytes(&self) -> u64 {
        self.gemms.iter().map(|g| g.weight_bytes).sum()
    }

    /// Useful GEMM FLOPs of the block.
    pub fn gemm_flops(&self) -> u64 {
        self.gemms.iter().map(|g| g.flops).sum()
    }
}

/// Lowers one decoder block for `model` at tensor parallelism `tp`.
///
/// # Errors
///
/// Returns [`SimError::InvalidShape`]/[`SimError::InvalidConfig`] when the
/// model or the derived GEMM shapes are malformed.
pub fn compile_block(
    npu: &NpuConfig,
    model: &LlmConfig,
    tp: u32,
    seq_lens: &[u64],
    phase: Phase,
) -> Result<CompiledBlock, SimError> {
    model.validate()?;
    let ops = decoder_block_ops(model, tp, seq_lens, phase);
    let vc = VectorCost::new(npu);

    let mut gemms = Vec::with_capacity(4);
    let mut vector_cycles = 0u64;
    let mut softmax_cycles = 0u64;
    let mut allreduce_bytes = 0u64;
    let mut allreduces = 0u32;

    for op in &ops {
        match &op.kind {
            OpKind::Gemm { m, k, n } => {
                gemms.push(plan_gemm(npu, *m, *k, *n, model.dtype)?);
            }
            OpKind::Softmax { seq_lens, heads } => {
                for &s in seq_lens {
                    softmax_cycles += vc.softmax(*heads, s.max(1));
                }
            }
            OpKind::LayerNorm { rows, width } => {
                vector_cycles += vc.layernorm(*rows, *width);
            }
            OpKind::Gelu { elems } => vector_cycles += vc.gelu(*elems),
            OpKind::Add { elems } => vector_cycles += vc.add(*elems),
            OpKind::AllReduce { bytes } => {
                if tp > 1 {
                    allreduce_bytes = allreduce_bytes.max(*bytes);
                    allreduces += 1;
                }
            }
            OpKind::MhaGemv { .. } => {} // shaped by the PIM scheduler
        }
    }

    Ok(CompiledBlock {
        gemms,
        vector_cycles,
        softmax_cycles,
        seq_lens: seq_lens.to_vec(),
        allreduce_bytes,
        allreduces,
    })
}

/// Parses the textual LLM specification format:
///
/// ```text
/// name = my-model
/// layers = 32
/// heads = 32
/// d_model = 4096
/// d_ff = 16384      # optional, defaults to 4 * d_model
/// tp = 4            # optional, defaults to 1
/// pp = 1            # optional, defaults to 1
/// dtype = fp16      # optional: fp16 | fp32 | int8
/// ```
///
/// Lines may carry `#` comments; blank lines are ignored.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] on unknown keys, unparsable values,
/// missing required keys, or a spec that fails [`LlmConfig::validate`].
pub fn parse_spec(text: &str) -> Result<LlmConfig, SimError> {
    let mut name = None;
    let mut layers = None;
    let mut heads = None;
    let mut d_model = None;
    let mut d_ff = None;
    let mut tp = 1u32;
    let mut pp = 1u32;
    let mut dtype = DataType::Fp16;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            SimError::InvalidConfig(format!("line {}: expected key = value", lineno + 1))
        })?;
        let key = key.trim();
        let value = value.trim();
        let parse_u32 = |v: &str| {
            v.parse::<u32>().map_err(|_| {
                SimError::InvalidConfig(format!("line {}: bad number {v:?}", lineno + 1))
            })
        };
        match key {
            "name" => name = Some(value.to_owned()),
            "layers" => layers = Some(parse_u32(value)?),
            "heads" => heads = Some(parse_u32(value)?),
            "d_model" => d_model = Some(parse_u32(value)?),
            "d_ff" => d_ff = Some(parse_u32(value)?),
            "tp" => tp = parse_u32(value)?,
            "pp" => pp = parse_u32(value)?,
            "dtype" => {
                dtype = match value {
                    "fp16" => DataType::Fp16,
                    "fp32" => DataType::Fp32,
                    "int8" => DataType::Int8,
                    other => {
                        return Err(SimError::InvalidConfig(format!(
                            "line {}: unknown dtype {other:?}",
                            lineno + 1
                        )))
                    }
                }
            }
            other => {
                return Err(SimError::InvalidConfig(format!(
                    "line {}: unknown key {other:?}",
                    lineno + 1
                )))
            }
        }
    }

    let require = |opt: Option<u32>, what: &str| {
        opt.ok_or_else(|| SimError::InvalidConfig(format!("missing required key {what:?}")))
    };
    let d_model = require(d_model, "d_model")?;
    let model = LlmConfig {
        name: name
            .ok_or_else(|| SimError::InvalidConfig("missing required key \"name\"".into()))?,
        num_layers: require(layers, "layers")?,
        num_heads: require(heads, "heads")?,
        d_model,
        d_ff: d_ff.unwrap_or(4 * d_model),
        parallelism: ParallelismConfig::new(tp, pp),
        dtype,
    };
    model.validate()?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_gpt3_block() {
        let npu = NpuConfig::table2();
        let model = LlmConfig::gpt3_7b();
        let seqs = vec![128u64; 64];
        let cb = compile_block(&npu, &model, 4, &seqs, Phase::Generation).unwrap();
        assert_eq!(cb.gemms.len(), 4);
        // QKV shapes: m=64, k=4096, n=3*4096/4.
        assert_eq!(cb.gemms[0].m, 64);
        assert_eq!(cb.gemms[0].k, 4096);
        assert_eq!(cb.gemms[0].n, 3 * 4096 / 4);
        assert!(cb.vector_cycles > 0);
        assert!(cb.softmax_cycles > 0);
        assert_eq!(cb.allreduces, 2);
        assert_eq!(cb.allreduce_bytes, 64 * 4096 * 2);
        // Weight bytes per block match the model's sharded accounting.
        assert_eq!(
            cb.weight_bytes(),
            crate::block::weight_bytes_per_layer_dev(&model, 4)
        );
    }

    #[test]
    fn no_allreduce_without_tp() {
        let npu = NpuConfig::table2();
        let mut model = LlmConfig::gpt3_7b();
        model.parallelism = ParallelismConfig::new(1, 1);
        let cb = compile_block(&npu, &model, 1, &[64; 8], Phase::Generation).unwrap();
        assert_eq!(cb.allreduces, 0);
        assert_eq!(cb.allreduce_bytes, 0);
    }

    #[test]
    fn softmax_scales_with_context() {
        let npu = NpuConfig::table2();
        let model = LlmConfig::gpt3_7b();
        let short = compile_block(&npu, &model, 4, &[64; 16], Phase::Generation).unwrap();
        let long = compile_block(&npu, &model, 4, &[4096; 16], Phase::Generation).unwrap();
        // Short contexts are dominated by per-row reduction overhead; very
        // long ones by the element sweeps, which scale linearly.
        assert!(
            long.softmax_cycles > 2 * short.softmax_cycles,
            "{} vs {}",
            long.softmax_cycles,
            short.softmax_cycles
        );
    }

    #[test]
    fn parse_roundtrip() {
        let spec = r#"
            # a comment
            name = custom-6b
            layers = 28
            heads = 16
            d_model = 4096
            tp = 2
            dtype = fp16
        "#;
        let m = parse_spec(spec).unwrap();
        assert_eq!(m.name, "custom-6b");
        assert_eq!(m.num_layers, 28);
        assert_eq!(m.d_ff, 4 * 4096);
        assert_eq!(m.parallelism.tp, 2);
        assert_eq!(m.parallelism.pp, 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_spec("layers = 2").is_err()); // missing keys
        assert!(parse_spec("name = x\nlayers = two\nheads = 1\nd_model = 64").is_err());
        assert!(parse_spec("name = x\nbogus_key = 4").is_err());
        assert!(parse_spec("name = x\nlayers 4").is_err()); // no '='
        assert!(parse_spec("name = x\nlayers = 4\nheads = 3\nd_model = 64\ndtype = fp8").is_err());
        // heads not dividing d_model fails validation.
        assert!(parse_spec("name = x\nlayers = 4\nheads = 5\nd_model = 64").is_err());
    }

    #[test]
    fn spec_matches_preset() {
        let spec = "name = GPT3-13B\nlayers = 40\nheads = 40\nd_model = 5120\ntp = 4\npp = 1";
        let parsed = parse_spec(spec).unwrap();
        let preset = LlmConfig::gpt3_13b();
        assert_eq!(parsed, preset);
    }
}
