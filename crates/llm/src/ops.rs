//! Operator IR of one LLM decoder block.
//!
//! Each [`Op`] names one logical operator with enough shape information to
//! cost it on the NPU (GEMMs, vector ops), the PIM (per-request GEMVs), or
//! the interconnect (all-reduces). The IR deliberately stays at operator
//! granularity: lowering to tiles and command streams happens in
//! [`crate::compiler`].

use neupims_types::Bytes;

/// Which engine an operator naturally belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Systolic-array cluster (GEMMs).
    NpuSystolic,
    /// Vector units (softmax, layernorm, GeLU, adds).
    NpuVector,
    /// In-memory GEMV units (MHA logit/attend).
    Pim,
    /// Inter-device links (tensor-parallel reductions).
    Interconnect,
}

/// One operator of the decoder block.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Human-readable name (e.g. `"qkv_gen"`).
    pub name: &'static str,
    /// Shape-bearing kind.
    pub kind: OpKind,
}

/// Operator kinds with their shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Batched weight-activation GEMM `m x k x n`.
    Gemm {
        /// Activation rows (batch/tokens).
        m: u64,
        /// Contraction dim.
        k: u64,
        /// Output dim.
        n: u64,
    },
    /// Per-request MHA GEMV pair (logit `Kᵀq` then attend `LV`); one entry
    /// per request, carrying its current context length.
    MhaGemv {
        /// Context (sequence) lengths of each request in the batch.
        seq_lens: Vec<u64>,
    },
    /// Row-wise softmax over per-request logits.
    Softmax {
        /// Context lengths of each request (row lengths).
        seq_lens: Vec<u64>,
        /// Heads per device (row count multiplier).
        heads: u64,
    },
    /// Layer normalization over `rows` rows of `width` elements.
    LayerNorm {
        /// Row count.
        rows: u64,
        /// Row width.
        width: u64,
    },
    /// GeLU over `elems` elements.
    Gelu {
        /// Element count.
        elems: u64,
    },
    /// Residual addition over `elems` elements.
    Add {
        /// Element count.
        elems: u64,
    },
    /// Tensor-parallel all-reduce of `bytes` per device.
    AllReduce {
        /// Payload bytes per device.
        bytes: Bytes,
    },
}

impl Op {
    /// The engine this operator executes on in the NeuPIMs mapping.
    pub fn engine(&self) -> Engine {
        match self.kind {
            OpKind::Gemm { .. } => Engine::NpuSystolic,
            OpKind::MhaGemv { .. } => Engine::Pim,
            OpKind::Softmax { .. }
            | OpKind::LayerNorm { .. }
            | OpKind::Gelu { .. }
            | OpKind::Add { .. } => Engine::NpuVector,
            OpKind::AllReduce { .. } => Engine::Interconnect,
        }
    }

    /// Useful FLOPs of the operator (2 per MAC; vector ops count one FLOP
    /// per element per pass at pass counts matching the vector cost model).
    pub fn flops(&self) -> u64 {
        match &self.kind {
            OpKind::Gemm { m, k, n } => 2 * m * k * n,
            OpKind::MhaGemv { seq_lens } => {
                // logit: 2*seq*E MACs... counted per element below at the
                // caller's embed width; here we only know seq. The compiler
                // multiplies by the device embed width; keep per-seq token
                // count so `flops` stays shape-local.
                seq_lens.iter().sum::<u64>() * 4
            }
            OpKind::Softmax { seq_lens, heads } => seq_lens.iter().sum::<u64>() * heads * 3,
            OpKind::LayerNorm { rows, width } => rows * width * 3,
            OpKind::Gelu { elems } => *elems,
            OpKind::Add { elems } => *elems,
            OpKind::AllReduce { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_mapping_matches_paper() {
        let gemm = Op {
            name: "qkv",
            kind: OpKind::Gemm { m: 1, k: 1, n: 1 },
        };
        assert_eq!(gemm.engine(), Engine::NpuSystolic);
        let mha = Op {
            name: "mha",
            kind: OpKind::MhaGemv { seq_lens: vec![1] },
        };
        assert_eq!(mha.engine(), Engine::Pim);
        let sm = Op {
            name: "softmax",
            kind: OpKind::Softmax {
                seq_lens: vec![1],
                heads: 2,
            },
        };
        assert_eq!(sm.engine(), Engine::NpuVector);
        let ar = Op {
            name: "allreduce",
            kind: OpKind::AllReduce { bytes: 8 },
        };
        assert_eq!(ar.engine(), Engine::Interconnect);
    }

    #[test]
    fn gemm_flops() {
        let op = Op {
            name: "ffn1",
            kind: OpKind::Gemm { m: 8, k: 16, n: 32 },
        };
        assert_eq!(op.flops(), 2 * 8 * 16 * 32);
    }
}
