//! Decoder-block IR construction.
//!
//! One decoder block (Figure 1a / Figure 2) lowers to:
//!
//! 1. layernorm → **QKV generation** GEMM (`m x d x 3d/tp`)
//! 2. **multi-head attention**: per-request logit GEMV, softmax, attend
//!    GEMV (the selective-batching split of Orca: GEMMs batch, MHA cannot)
//! 3. **output projection** GEMM (`m x d/tp x d`) + residual add
//! 4. layernorm → **FFN** GEMMs (`m x d x d_ff/tp`, GeLU,
//!    `m x d_ff/tp x d`) + residual add
//! 5. two tensor-parallel all-reduces (after projection and after FFN2)
//!
//! In the generation phase `m` equals the number of batched requests (one
//! token each); in summarization `m` is the total prompt tokens. MHA
//! operates per request at its context length either way.

use neupims_types::{LlmConfig, Phase};

use crate::ops::{Op, OpKind};

/// Builds the operator list of one decoder block.
///
/// `tp` is the tensor-parallel degree actually deployed (may differ from
/// the model's Table 3 default); `seq_lens` carries each batched request's
/// current context length. For [`Phase::Summarization`] the GEMM row count
/// is the sum of prompt lengths; for [`Phase::Generation`] it is the number
/// of requests.
pub fn decoder_block_ops(model: &LlmConfig, tp: u32, seq_lens: &[u64], phase: Phase) -> Vec<Op> {
    let d = model.d_model as u64;
    let d_ff = model.d_ff as u64;
    let tp = tp.max(1) as u64;
    let heads_dev = (model.num_heads as u64 / tp).max(1);
    let m: u64 = match phase {
        Phase::Summarization => seq_lens.iter().sum(),
        Phase::Generation => seq_lens.len() as u64,
    };
    let m = m.max(1);
    let es = model.dtype.size_bytes();

    let mut ops = vec![Op {
        name: "ln_attn",
        kind: OpKind::LayerNorm { rows: m, width: d },
    }];
    ops.push(Op {
        name: "qkv_gen",
        kind: OpKind::Gemm {
            m,
            k: d,
            n: 3 * d / tp,
        },
    });
    ops.push(Op {
        name: "mha",
        kind: OpKind::MhaGemv {
            seq_lens: seq_lens.to_vec(),
        },
    });
    ops.push(Op {
        name: "softmax",
        kind: OpKind::Softmax {
            seq_lens: seq_lens.to_vec(),
            heads: heads_dev,
        },
    });
    ops.push(Op {
        name: "attn_proj",
        kind: OpKind::Gemm { m, k: d / tp, n: d },
    });
    ops.push(Op {
        name: "allreduce_attn",
        kind: OpKind::AllReduce { bytes: m * d * es },
    });
    ops.push(Op {
        name: "add_attn",
        kind: OpKind::Add { elems: m * d },
    });
    ops.push(Op {
        name: "ln_ffn",
        kind: OpKind::LayerNorm { rows: m, width: d },
    });
    ops.push(Op {
        name: "ffn1",
        kind: OpKind::Gemm {
            m,
            k: d,
            n: d_ff / tp,
        },
    });
    ops.push(Op {
        name: "gelu",
        kind: OpKind::Gelu {
            elems: m * d_ff / tp,
        },
    });
    ops.push(Op {
        name: "ffn2",
        kind: OpKind::Gemm {
            m,
            k: d_ff / tp,
            n: d,
        },
    });
    ops.push(Op {
        name: "allreduce_ffn",
        kind: OpKind::AllReduce { bytes: m * d * es },
    });
    ops.push(Op {
        name: "add_ffn",
        kind: OpKind::Add { elems: m * d },
    });
    ops
}

/// Per-layer GEMM weight bytes resident on one device at `tp`.
pub fn weight_bytes_per_layer_dev(model: &LlmConfig, tp: u32) -> u64 {
    let d = model.d_model as u64;
    let d_ff = model.d_ff as u64;
    let tp = tp.max(1) as u64;
    let es = model.dtype.size_bytes();
    // QKV (d x 3d) + proj (d x d) + FFN (2 * d * d_ff), all sharded by tp.
    ((3 * d * d) + (d * d) + (2 * d * d_ff)) / tp * es
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Engine;

    #[test]
    fn generation_rows_equal_batch() {
        let model = LlmConfig::gpt3_7b();
        let ops = decoder_block_ops(&model, 4, &[100, 200, 300], Phase::Generation);
        let qkv = ops.iter().find(|o| o.name == "qkv_gen").unwrap();
        match qkv.kind {
            OpKind::Gemm { m, k, n } => {
                assert_eq!(m, 3);
                assert_eq!(k, 4096);
                assert_eq!(n, 3 * 4096 / 4);
            }
            _ => panic!("qkv_gen must be a GEMM"),
        }
    }

    #[test]
    fn summarization_rows_equal_total_tokens() {
        let model = LlmConfig::gpt3_7b();
        let ops = decoder_block_ops(&model, 4, &[100, 200, 300], Phase::Summarization);
        let qkv = ops.iter().find(|o| o.name == "qkv_gen").unwrap();
        match qkv.kind {
            OpKind::Gemm { m, .. } => assert_eq!(m, 600),
            _ => panic!(),
        }
    }

    #[test]
    fn block_has_every_stage() {
        let model = LlmConfig::gpt3_13b();
        let ops = decoder_block_ops(&model, 4, &[64; 8], Phase::Generation);
        let names: Vec<&str> = ops.iter().map(|o| o.name).collect();
        for expect in [
            "ln_attn",
            "qkv_gen",
            "mha",
            "softmax",
            "attn_proj",
            "allreduce_attn",
            "add_attn",
            "ln_ffn",
            "ffn1",
            "gelu",
            "ffn2",
            "allreduce_ffn",
            "add_ffn",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        // Exactly three GEMMs... QKV, projection, FFN1, FFN2 = four.
        let gemms = ops
            .iter()
            .filter(|o| o.engine() == Engine::NpuSystolic)
            .count();
        assert_eq!(gemms, 4);
    }

    #[test]
    fn weight_bytes_match_model_accounting() {
        let model = LlmConfig::gpt3_7b();
        assert_eq!(
            weight_bytes_per_layer_dev(&model, 1),
            model.weight_bytes_per_layer()
        );
        assert_eq!(
            weight_bytes_per_layer_dev(&model, 4),
            model.weight_bytes_per_layer() / 4
        );
    }

    #[test]
    fn empty_batch_degenerates_to_unit_rows() {
        let model = LlmConfig::gpt3_7b();
        let ops = decoder_block_ops(&model, 4, &[], Phase::Generation);
        let qkv = ops.iter().find(|o| o.name == "qkv_gen").unwrap();
        match qkv.kind {
            OpKind::Gemm { m, .. } => assert_eq!(m, 1),
            _ => panic!(),
        }
    }
}
