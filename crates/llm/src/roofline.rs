//! Roofline and utilization analytics behind the motivation figures.
//!
//! Figure 4 plots arithmetic intensity (FLOPs/byte) against achievable
//! performance for the decoder operators of GPT3-13B/175B in both phases;
//! Figure 5 reports compute/bandwidth/capacity utilization of GPU systems
//! running four LLMs. Both are analytic: performance = min(peak, AI x BW).

use neupims_types::{GpuSpec, LlmConfig, Phase};

/// Arithmetic intensity of a decoder operator class, FLOPs per byte.
///
/// * `Logit`/`Attend` (activation-activation): no reuse — every K/V byte is
///   read once per use, so intensity stays near 1 regardless of batching.
/// * `QkvProj` (weight-activation): weights amortize over the `m` rows
///   flowing through, so intensity grows with tokens-in-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorClass {
    /// MHA logit/attend GEMVs.
    LogitAttend,
    /// QKV generation / projection / FFN GEMMs.
    QkvProj,
}

/// Arithmetic intensity of `class` for `model` with `m` tokens in flight.
///
/// Both phases use the same formulas; what changes is `m` (prompt tokens in
/// summarization, batched single tokens in generation).
pub fn operator_intensity(model: &LlmConfig, class: OperatorClass, m: u64, phase: Phase) -> f64 {
    let es = model.dtype.size_bytes() as f64;
    match class {
        OperatorClass::QkvProj => {
            // C[m,n] = A[m,k] B[k,n]: 2mkn FLOPs over (kn + mk + mn) bytes.
            let k = model.d_model as f64;
            let n = model.d_model as f64;
            let m = m.max(1) as f64;
            2.0 * m * k * n / ((k * n + m * k + m * n) * es)
        }
        OperatorClass::LogitAttend => {
            // Per request/head: 2 * seq * d_head FLOPs over seq * d_head
            // bytes of K (or V) plus the small vector. In summarization the
            // query side is a matrix of `m` prompt tokens, giving reuse m.
            let seq = 512.0_f64; // representative context; cancels for gen
            let d_head = (model.d_model / model.num_heads) as f64;
            match phase {
                Phase::Generation => 2.0 * seq * d_head / (seq * d_head * es + d_head * es),
                Phase::Summarization => {
                    let m = m.max(1) as f64;
                    2.0 * m * seq * d_head / ((seq * d_head + m * d_head + m * seq) * es)
                }
            }
        }
    }
}

/// Achievable TFLOPS at `intensity` on a device with the given peaks
/// (classic roofline: `min(peak, AI x BW)`).
pub fn roofline_tflops(intensity: f64, peak_tflops: f64, bw_gbps: f64) -> f64 {
    (intensity * bw_gbps / 1000.0).min(peak_tflops)
}

/// Utilization triple of a GPU system running batched LLM inference
/// (Figure 5's three bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuUtilization {
    /// Fraction of peak FLOPs achieved over a decode iteration.
    pub compute: f64,
    /// Fraction of peak memory bandwidth used.
    pub bandwidth: f64,
    /// Fraction of device memory occupied (weights + KV cache).
    pub capacity: f64,
    /// Number of GPUs the model was sharded over (capacity-driven).
    pub gpus: u32,
    /// Batch size that filled the remaining capacity.
    pub batch: u64,
}

/// Analytic utilization of `gpu`s serving `model` in the generation phase.
///
/// Mirrors the paper's observation protocol: the GPU count is chosen by
/// capacity, the batch fills the remaining memory with KV cache at an
/// average context of `avg_seq` tokens, and utilization follows from the
/// byte and FLOP counts of one decode iteration.
pub fn gpu_utilization(gpu: &GpuSpec, model: &LlmConfig, avg_seq: u64) -> GpuUtilization {
    let weight_bytes = model.total_params() as f64 * model.dtype.size_bytes() as f64;
    let kv_per_req = (model.kv_bytes_per_token() * avg_seq) as f64;

    // Scale out by capacity until weights fit in ~70% of aggregate memory.
    let mut gpus = 1u32;
    while (gpus as f64) * gpu.capacity as f64 * 0.7 < weight_bytes {
        gpus *= 2;
    }
    let total_cap = gpus as f64 * gpu.capacity as f64;
    let kv_budget = (total_cap - weight_bytes).max(0.0) * 0.9;
    let batch = ((kv_budget / kv_per_req) as u64).max(1);

    // One decode iteration: every weight byte read once, every request's KV
    // read once; FLOPs = 2 * params * batch (GEMMs) + attention GEMVs.
    let bytes = weight_bytes + batch as f64 * kv_per_req;
    let flops = 2.0 * model.total_params() as f64 * batch as f64
        + 4.0 * batch as f64 * avg_seq as f64 * model.d_model as f64 * model.num_layers as f64;
    let time_bw = bytes / (gpus as f64 * gpu.mem_bw_bytes_per_sec);
    let time_fl = flops / (gpus as f64 * gpu.peak_fp16_flops);
    let time = time_bw.max(time_fl);

    GpuUtilization {
        compute: (time_fl / time).min(1.0),
        bandwidth: (time_bw / time).min(1.0),
        capacity: ((weight_bytes + batch as f64 * kv_per_req) / total_cap).min(1.0),
        gpus,
        batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_intensity_grows_with_batch() {
        let model = LlmConfig::gpt3_13b();
        let i1 = operator_intensity(&model, OperatorClass::QkvProj, 1, Phase::Generation);
        let i64 = operator_intensity(&model, OperatorClass::QkvProj, 64, Phase::Generation);
        let i512 = operator_intensity(&model, OperatorClass::QkvProj, 512, Phase::Generation);
        assert!(i1 < 1.0, "single-token GEMV intensity ~0.5–1: {i1}");
        assert!(i64 > 20.0, "batched: {i64}");
        assert!(i512 > i64);
    }

    #[test]
    fn attention_intensity_stays_flat_in_generation() {
        let model = LlmConfig::gpt3_13b();
        let gen = operator_intensity(&model, OperatorClass::LogitAttend, 256, Phase::Generation);
        // No reuse: ~1 FLOP per byte at fp16 (paper's 0.25–1 band).
        assert!(gen < 1.5, "{gen}");
        let sum = operator_intensity(
            &model,
            OperatorClass::LogitAttend,
            256,
            Phase::Summarization,
        );
        assert!(sum > 10.0 * gen, "summarization batches the query side");
    }

    #[test]
    fn roofline_clamps_at_peak() {
        assert_eq!(roofline_tflops(10_000.0, 140.0, 1555.0), 140.0);
        let bw_bound = roofline_tflops(1.0, 140.0, 1555.0);
        assert!((bw_bound - 1.555).abs() < 1e-9);
    }

    #[test]
    fn figure5_shape_capacity_high_compute_low() {
        // The paper: capacity ~100%, compute < 40%, for all four models on
        // both GPUs.
        for gpu in [GpuSpec::a100(), GpuSpec::rtx3090()] {
            for model in [
                LlmConfig::gpt_neox_20b(),
                LlmConfig::llama2_13b(),
                LlmConfig::opt_30b(),
                LlmConfig::mpt_30b(),
            ] {
                let u = gpu_utilization(&gpu, &model, 512);
                assert!(
                    u.capacity > 0.6,
                    "{} {}: cap {}",
                    gpu.name,
                    model.name,
                    u.capacity
                );
                assert!(
                    u.compute < 0.4,
                    "{} {}: compute {}",
                    gpu.name,
                    model.name,
                    u.compute
                );
                assert!(
                    u.bandwidth > 0.9,
                    "{} {}: decode must be bandwidth-bound ({})",
                    gpu.name,
                    model.name,
                    u.bandwidth
                );
                assert!(u.batch >= 1);
            }
        }
    }
}
